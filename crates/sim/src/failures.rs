//! The link failure/repair process.
//!
//! The testbed (§5.1) rolls a die every second per link: fail with
//! probability `x_i`, then repair after `repair_time` seconds (3 s default;
//! Fig. 20 sweeps 0.5–4 s). Event-driven equivalent: the gap between
//! repairs and the next failure is geometric with success probability
//! `x_i`, which we sample directly so long simulations never tick through
//! quiet seconds.
//!
//! With an [`SrlgSet`] attached ([`FailureProcess::with_srlgs`]) the dice
//! are rolled per independent Bernoulli *event* — one residual event per
//! fate group plus one per SRLG — and a fate group is down iff at least one
//! active event covers it (reference-counted, so overlapping SRLG and
//! residual failures repair independently without flapping the group).

use bate_net::{GroupId, LinkSet, Scenario, SrlgSet, Topology};
use rand::rngs::StdRng;
use rand::Rng;

/// Tracks which failure events are active, which fate groups that takes
/// down, and samples failure gaps.
pub struct FailureProcess {
    /// Per-event failure probability per second. Events `0..num_groups`
    /// are the per-group residual events; later indices are SRLG events.
    probs: Vec<f64>,
    /// Fate groups covered by each event.
    covers: Vec<LinkSet>,
    /// Which events are currently active.
    event_down: Vec<bool>,
    /// Per-group count of active covering events.
    cover_counts: Vec<u32>,
    /// Currently failed groups (covered by ≥ 1 active event).
    down: LinkSet,
    /// How long a failure lasts, seconds.
    pub repair_time: f64,
    /// The SRLG layer, when correlated failures are modeled.
    srlgs: Option<SrlgSet>,
}

impl FailureProcess {
    /// Independent per-group failures (the paper's model).
    pub fn new(topo: &Topology, repair_time: f64) -> FailureProcess {
        let n = topo.num_groups();
        FailureProcess {
            probs: topo.groups().map(|(_, g)| g.failure_prob).collect(),
            covers: (0..n).map(|i| LinkSet::from_indices(n, &[i])).collect(),
            event_down: vec![false; n],
            cover_counts: vec![0; n],
            down: LinkSet::new(n),
            repair_time,
            srlgs: None,
        }
    }

    /// SRLG-aware process: per-group residual events plus one event per
    /// shared-risk group, all independent.
    pub fn with_srlgs(topo: &Topology, srlgs: &SrlgSet, repair_time: f64) -> FailureProcess {
        let events = srlgs.events(topo);
        FailureProcess {
            probs: events.iter().map(|e| e.prob).collect(),
            covers: events.into_iter().map(|e| e.cover).collect(),
            event_down: vec![false; topo.num_groups() + srlgs.len()],
            cover_counts: vec![0; topo.num_groups()],
            down: LinkSet::new(topo.num_groups()),
            repair_time,
            srlgs: Some(srlgs.clone()),
        }
    }

    /// Number of independent failure events (= groups + SRLGs).
    pub fn num_events(&self) -> usize {
        self.probs.len()
    }

    /// Sample the number of seconds from now until `group`'s residual
    /// event next fires (geometric with parameter `x_i`, ≥ 1 second).
    pub fn sample_gap(&self, rng: &mut StdRng, group: GroupId) -> f64 {
        self.sample_event_gap(rng, group.index())
    }

    /// Sample the seconds until failure event `event` next fires.
    pub fn sample_event_gap(&self, rng: &mut StdRng, event: usize) -> f64 {
        let x = self.probs[event];
        if x <= 0.0 {
            return f64::INFINITY;
        }
        // Geometric via inverse CDF: ceil(ln(1-u) / ln(1-x)).
        let u: f64 = rng.gen_range(0.0f64..1.0);
        ((1.0 - u).ln() / (1.0 - x).ln()).ceil().max(1.0)
    }

    /// Mark a group failed (its residual event fires). Returns false if
    /// the group was already down (the new failure is absorbed).
    pub fn fail(&mut self, group: GroupId) -> bool {
        if self.down.contains(group.index()) {
            return false;
        }
        self.fail_event(group.index());
        true
    }

    /// Activate a failure event. Returns false if it was already active.
    /// All covered fate groups go down (reference-counted).
    pub fn fail_event(&mut self, event: usize) -> bool {
        if self.event_down[event] {
            return false;
        }
        self.event_down[event] = true;
        // Clone keeps the borrow checker happy; covers are a few words.
        let cover = self.covers[event].clone();
        for g in cover.iter() {
            self.cover_counts[g] += 1;
            if self.cover_counts[g] == 1 {
                self.down.insert(g);
            }
        }
        true
    }

    /// Mark a group repaired (its residual event clears). The group stays
    /// down if an active SRLG event still covers it.
    pub fn repair(&mut self, group: GroupId) {
        self.repair_event(group.index());
    }

    /// Deactivate a failure event; covered groups come back up once no
    /// active event covers them.
    pub fn repair_event(&mut self, event: usize) {
        if !self.event_down[event] {
            return;
        }
        self.event_down[event] = false;
        let cover = self.covers[event].clone();
        for g in cover.iter() {
            self.cover_counts[g] -= 1;
            if self.cover_counts[g] == 0 {
                self.down.remove(g);
            }
        }
    }

    /// Is the event currently active?
    pub fn event_active(&self, event: usize) -> bool {
        self.event_down[event]
    }

    /// Is anything failed right now?
    pub fn any_down(&self) -> bool {
        !self.down.is_empty()
    }

    /// Currently failed groups.
    pub fn failed_groups(&self) -> Vec<GroupId> {
        self.down.iter().map(GroupId).collect()
    }

    /// The current network state as a [`Scenario`] (probability field set
    /// to the analytic probability of this exact state — the correlated
    /// joint probability when SRLGs are attached).
    pub fn current_scenario(&self, topo: &Topology) -> Scenario {
        let probability = match &self.srlgs {
            Some(srlgs) => srlgs.state_probability(topo, &self.down),
            None => bate_net::scenario::scenario_probability(topo, &self.down),
        };
        Scenario {
            failed: self.down.clone(),
            probability,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_net::topologies;
    use rand::SeedableRng;

    #[test]
    fn gap_distribution_matches_probability() {
        let topo = topologies::testbed6();
        let fp = FailureProcess::new(&topo, 3.0);
        let mut rng = StdRng::seed_from_u64(1);
        // L4 (DC4-DC5) fails 1% per second: mean gap ≈ 100 s.
        let n = |s: &str| topo.find_node(s).unwrap();
        let l4 = topo.find_link(n("DC4"), n("DC5")).unwrap();
        let g = topo.link(l4).group;
        let trials = 20_000;
        let mean: f64 =
            (0..trials).map(|_| fp.sample_gap(&mut rng, g)).sum::<f64>() / trials as f64;
        assert!((mean - 100.0).abs() < 5.0, "mean gap {mean}");
    }

    #[test]
    fn fail_repair_cycle() {
        let topo = topologies::toy4();
        let mut fp = FailureProcess::new(&topo, 3.0);
        let g = GroupId(0);
        assert!(!fp.any_down());
        assert!(fp.fail(g));
        assert!(!fp.fail(g), "double failure absorbed");
        assert!(fp.any_down());
        assert_eq!(fp.failed_groups(), vec![g]);
        let sc = fp.current_scenario(&topo);
        assert_eq!(sc.num_failures(), 1);
        fp.repair(g);
        assert!(!fp.any_down());
    }

    #[test]
    fn zero_probability_never_fails() {
        let mut topo = bate_net::Topology::new("t");
        let a = topo.add_node("A");
        let b = topo.add_node("B");
        topo.add_duplex_link(a, b, 1.0, 0.0);
        let fp = FailureProcess::new(&topo, 3.0);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(fp.sample_gap(&mut rng, GroupId(0)).is_infinite());
    }

    #[test]
    fn srlg_event_downs_all_covered_groups() {
        let topo = topologies::toy4();
        let mut srlgs = SrlgSet::new(&topo);
        srlgs.add("cut", 0.01, &[GroupId(1), GroupId(3)]);
        let mut fp = FailureProcess::with_srlgs(&topo, &srlgs, 3.0);
        assert_eq!(fp.num_events(), 5);

        let srlg_event = topo.num_groups(); // first (only) SRLG
        assert!(fp.fail_event(srlg_event));
        assert!(!fp.fail_event(srlg_event), "double event absorbed");
        assert_eq!(fp.failed_groups(), vec![GroupId(1), GroupId(3)]);

        // A residual failure on a covered group overlaps the SRLG…
        assert!(!fp.fail(GroupId(1)), "group already down — absorbed");
        fp.fail_event(1); // …unless driven at the event level.
        // Repairing the SRLG leaves group 1 down (its residual event is
        // still active) and brings group 3 back.
        fp.repair_event(srlg_event);
        assert_eq!(fp.failed_groups(), vec![GroupId(1)]);
        fp.repair(GroupId(1));
        assert!(!fp.any_down());
    }

    #[test]
    fn srlg_scenario_probability_is_correlated() {
        let topo = topologies::toy4();
        let mut srlgs = SrlgSet::new(&topo);
        srlgs.add("cut", 0.01, &[GroupId(1), GroupId(3)]);
        let mut fp = FailureProcess::with_srlgs(&topo, &srlgs, 3.0);
        fp.fail_event(topo.num_groups());
        let sc = fp.current_scenario(&topo);
        assert_eq!(sc.num_failures(), 2);
        let exact = srlgs.state_probability(&topo, &sc.failed);
        assert_eq!(sc.probability, exact);
        // Far above the independence product over the raw per-group probs.
        let indep = bate_net::scenario::scenario_probability(&topo, &sc.failed);
        assert!(sc.probability / indep > 100.0, "{} vs {indep}", sc.probability);
    }
}
