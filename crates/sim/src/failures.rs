//! The link failure/repair process.
//!
//! The testbed (§5.1) rolls a die every second per link: fail with
//! probability `x_i`, then repair after `repair_time` seconds (3 s default;
//! Fig. 20 sweeps 0.5–4 s). Event-driven equivalent: the gap between
//! repairs and the next failure is geometric with success probability
//! `x_i`, which we sample directly so long simulations never tick through
//! quiet seconds.

use bate_net::{GroupId, LinkSet, Scenario, Topology};
use rand::rngs::StdRng;
use rand::Rng;

/// Tracks which fate groups are down and samples failure gaps.
pub struct FailureProcess {
    /// Per-group failure probability per second.
    probs: Vec<f64>,
    /// Currently failed groups.
    down: LinkSet,
    /// How long a failure lasts, seconds.
    pub repair_time: f64,
}

impl FailureProcess {
    pub fn new(topo: &Topology, repair_time: f64) -> FailureProcess {
        FailureProcess {
            probs: topo.groups().map(|(_, g)| g.failure_prob).collect(),
            down: LinkSet::new(topo.num_groups()),
            repair_time,
        }
    }

    /// Sample the number of seconds from now until `group` next fails
    /// (geometric with parameter `x_i`, ≥ 1 second).
    pub fn sample_gap(&self, rng: &mut StdRng, group: GroupId) -> f64 {
        let x = self.probs[group.index()];
        if x <= 0.0 {
            return f64::INFINITY;
        }
        // Geometric via inverse CDF: ceil(ln(1-u) / ln(1-x)).
        let u: f64 = rng.gen_range(0.0f64..1.0);
        ((1.0 - u).ln() / (1.0 - x).ln()).ceil().max(1.0)
    }

    /// Mark a group failed. Returns false if it was already down (the new
    /// failure is absorbed).
    pub fn fail(&mut self, group: GroupId) -> bool {
        if self.down.contains(group.index()) {
            return false;
        }
        self.down.insert(group.index());
        true
    }

    /// Mark a group repaired.
    pub fn repair(&mut self, group: GroupId) {
        self.down.remove(group.index());
    }

    /// Is anything failed right now?
    pub fn any_down(&self) -> bool {
        !self.down.is_empty()
    }

    /// Currently failed groups.
    pub fn failed_groups(&self) -> Vec<GroupId> {
        self.down.iter().map(GroupId).collect()
    }

    /// The current network state as a [`Scenario`] (probability field set
    /// to the analytic probability of this exact state).
    pub fn current_scenario(&self, topo: &Topology) -> Scenario {
        Scenario {
            failed: self.down.clone(),
            probability: bate_net::scenario::scenario_probability(topo, &self.down),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_net::topologies;
    use rand::SeedableRng;

    #[test]
    fn gap_distribution_matches_probability() {
        let topo = topologies::testbed6();
        let fp = FailureProcess::new(&topo, 3.0);
        let mut rng = StdRng::seed_from_u64(1);
        // L4 (DC4-DC5) fails 1% per second: mean gap ≈ 100 s.
        let n = |s: &str| topo.find_node(s).unwrap();
        let l4 = topo.find_link(n("DC4"), n("DC5")).unwrap();
        let g = topo.link(l4).group;
        let trials = 20_000;
        let mean: f64 =
            (0..trials).map(|_| fp.sample_gap(&mut rng, g)).sum::<f64>() / trials as f64;
        assert!((mean - 100.0).abs() < 5.0, "mean gap {mean}");
    }

    #[test]
    fn fail_repair_cycle() {
        let topo = topologies::toy4();
        let mut fp = FailureProcess::new(&topo, 3.0);
        let g = GroupId(0);
        assert!(!fp.any_down());
        assert!(fp.fail(g));
        assert!(!fp.fail(g), "double failure absorbed");
        assert!(fp.any_down());
        assert_eq!(fp.failed_groups(), vec![g]);
        let sc = fp.current_scenario(&topo);
        assert_eq!(sc.num_failures(), 1);
        fp.repair(g);
        assert!(!fp.any_down());
    }

    #[test]
    fn zero_probability_never_fails() {
        let mut topo = bate_net::Topology::new("t");
        let a = topo.add_node("A");
        let b = topo.add_node("B");
        topo.add_duplex_link(a, b, 1.0, 0.0);
        let fp = FailureProcess::new(&topo, 3.0);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(fp.sample_gap(&mut rng, GroupId(0)).is_infinite());
    }
}
