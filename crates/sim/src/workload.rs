//! Demand workload generation (§5.1 testbed / §5.2 simulation settings).
//!
//! Arrivals follow a Poisson process; durations are exponential; demand
//! sizes are uniform (testbed: 10–50 Mbps) or drawn from gravity-model
//! traffic matrices with a scale-down factor (simulation); availability
//! targets come from the Table-1-style pools; refund ratios are drawn from
//! the Azure service schedules.
//!
//! The arrival *rate* can additionally be shaped ([`RateShape`]): a diurnal
//! sinusoid plus seeded flash-crowd windows, mirroring the
//! `network_listener` exp2 cross-traffic profile (stable background load
//! with short bursts landing on average every 15 time units and lasting 2)
//! scaled from seconds to minutes. [`RateShape::Constant`] reproduces the
//! paper's settings bit-for-bit.

use bate_core::pricing::SlaSchedule;
use bate_core::{BaDemand, DemandId};
use bate_net::distributions::{exponential, poisson};
use bate_net::TrafficMatrix;
use bate_routing::TunnelSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How demand bandwidths are drawn.
#[derive(Debug, Clone)]
pub enum BandwidthModel {
    /// Uniform in `[lo, hi]` (testbed: 10–50 Mbps).
    Uniform { lo: f64, hi: f64 },
    /// Proportional to a traffic-matrix entry for the chosen pair, times
    /// `scale` (the paper's scale-down factor of 5 is `scale = 1/5` on
    /// pre-normalized matrices).
    Matrix {
        matrices: Vec<TrafficMatrix>,
        scale: f64,
    },
}

/// Time-of-day modulation of the arrival rate.
#[derive(Debug, Clone)]
pub enum RateShape {
    /// Constant rate — the paper's §5.1/§5.2 settings.
    Constant,
    /// Diurnal sinusoid with seeded flash-crowd bursts layered on top.
    ///
    /// The per-minute rate is
    /// `base · (1 + A·sin(2π·minute/period)) · (flash? m : 1)`,
    /// with flash onsets arriving as an exponential stream (mean gap
    /// `flash_every_min`) drawn from a dedicated RNG stream so the demand
    /// draw sequence itself is untouched by the shape.
    DiurnalFlash {
        /// Peak-to-trough swing as a fraction of the mean rate (`A`, in
        /// `[0, 1)`).
        diurnal_amplitude: f64,
        /// Diurnal period in minutes (1440 = one day).
        period_min: f64,
        /// Mean minutes between flash-crowd onsets.
        flash_every_min: f64,
        /// How long each flash lasts, minutes.
        flash_duration_min: f64,
        /// Arrival-rate multiplier while a flash is active (`m`).
        flash_multiplier: f64,
    },
}

impl RateShape {
    /// The exp2 cross-traffic profile: bursts every ~15 minutes lasting 2,
    /// six-fold rate inside a burst, on a half-amplitude daily sinusoid.
    pub fn exp2() -> RateShape {
        RateShape::DiurnalFlash {
            diurnal_amplitude: 0.5,
            period_min: 1440.0,
            flash_every_min: 15.0,
            flash_duration_min: 2.0,
            flash_multiplier: 6.0,
        }
    }
}

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Mean demand arrivals per minute (whole network).
    pub arrivals_per_min: f64,
    /// Mean demand lifetime in minutes.
    pub mean_duration_min: f64,
    /// Which s-d pairs (tunnel-set indices) demands may request.
    pub pairs: Vec<usize>,
    pub bandwidth: BandwidthModel,
    /// Availability targets to draw from, uniformly.
    pub availability_targets: Vec<f64>,
    /// Refund schedules to draw from, uniformly.
    pub refund_pool: Vec<SlaSchedule>,
    /// Price per Mbps (§5.1: "a unit price is charged for 1 Mbps").
    pub unit_price: f64,
    /// Time-of-day shaping of `arrivals_per_min`.
    pub shape: RateShape,
    pub seed: u64,
}

impl WorkloadConfig {
    /// The §5.1 testbed workload over the given pairs.
    pub fn testbed(pairs: Vec<usize>, seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            arrivals_per_min: 2.0,
            mean_duration_min: 5.0,
            pairs,
            bandwidth: BandwidthModel::Uniform { lo: 10.0, hi: 50.0 },
            availability_targets: bate_core::AvailabilityClass::testbed_targets().to_vec(),
            refund_pool: bate_core::pricing::testbed_services(),
            unit_price: 1.0,
            shape: RateShape::Constant,
            seed,
        }
    }

    /// The testbed workload under the exp2 diurnal + flash-crowd shape.
    pub fn diurnal_flash(pairs: Vec<usize>, seed: u64) -> WorkloadConfig {
        let mut cfg = WorkloadConfig::testbed(pairs, seed);
        cfg.shape = RateShape::exp2();
        cfg
    }

    /// The §5.2 simulation workload (arrival rate swept 1–6/min).
    pub fn simulation(pairs: Vec<usize>, arrivals_per_min: f64, seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            arrivals_per_min,
            mean_duration_min: 5.0,
            pairs,
            bandwidth: BandwidthModel::Uniform { lo: 10.0, hi: 50.0 },
            availability_targets: bate_core::AvailabilityClass::simulation_targets().to_vec(),
            refund_pool: bate_core::pricing::azure_services(),
            unit_price: 1.0,
            shape: RateShape::Constant,
            seed,
        }
    }
}

/// Per-minute rate multipliers over the horizon. A dedicated RNG stream
/// (`seed ^ FLASH_STREAM`) drives the flash onsets so attaching a shape
/// never perturbs the demand draws themselves.
fn rate_factors(config: &WorkloadConfig, minutes: usize) -> Vec<f64> {
    match &config.shape {
        RateShape::Constant => vec![1.0; minutes],
        RateShape::DiurnalFlash {
            diurnal_amplitude,
            period_min,
            flash_every_min,
            flash_duration_min,
            flash_multiplier,
        } => {
            const FLASH_STREAM: u64 = 0xF1A5_u64;
            let mut rng = StdRng::seed_from_u64(config.seed ^ FLASH_STREAM);
            let mut flash = vec![false; minutes];
            let mut t = exponential(&mut rng, *flash_every_min);
            while (t as usize) < minutes {
                let end = t + flash_duration_min;
                let mut m = t as usize;
                while (m as f64) < end && m < minutes {
                    flash[m] = true;
                    m += 1;
                }
                t += flash_duration_min + exponential(&mut rng, *flash_every_min);
            }
            (0..minutes)
                .map(|m| {
                    let phase = 2.0 * std::f64::consts::PI * m as f64 / period_min;
                    let diurnal = 1.0 + diurnal_amplitude * phase.sin();
                    let burst = if flash[m] { *flash_multiplier } else { 1.0 };
                    (diurnal * burst).max(0.0)
                })
                .collect()
        }
    }
}

/// A generated arrival: when it lands, how long it lives, and the demand.
#[derive(Debug, Clone)]
pub struct GeneratedDemand {
    pub arrival_time: f64,
    pub duration: f64,
    pub demand: BaDemand,
    /// Index into the refund pool (for post-hoc tiered-refund accounting).
    pub schedule: usize,
}

/// Generate all arrivals in `[0, horizon_secs)`.
pub fn generate(
    config: &WorkloadConfig,
    tunnels: &TunnelSet,
    horizon_secs: f64,
) -> Vec<GeneratedDemand> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::new();
    let mut id = 0u64;
    let minutes = (horizon_secs / 60.0).ceil() as usize;
    let factors = rate_factors(config, minutes);
    for (minute, factor) in factors.iter().enumerate() {
        let n = poisson(&mut rng, config.arrivals_per_min * factor);
        for _ in 0..n {
            let arrival_time = minute as f64 * 60.0 + rng.gen_range(0.0..60.0);
            if arrival_time >= horizon_secs {
                continue;
            }
            let pair = config.pairs[rng.gen_range(0..config.pairs.len())];
            let bw = match &config.bandwidth {
                BandwidthModel::Uniform { lo, hi } => rng.gen_range(*lo..=*hi),
                BandwidthModel::Matrix { matrices, scale } => {
                    let m = &matrices[rng.gen_range(0..matrices.len())];
                    let (s, d) = tunnels.pair(pair);
                    (m.demand(s, d) * scale).max(1.0)
                }
            };
            let beta =
                config.availability_targets[rng.gen_range(0..config.availability_targets.len())];
            let schedule = rng.gen_range(0..config.refund_pool.len().max(1));
            let refund = config
                .refund_pool
                .get(schedule)
                .map(|s| s.violation_ratio())
                .unwrap_or(0.0);
            let duration = exponential(&mut rng, config.mean_duration_min * 60.0);
            id += 1;
            out.push(GeneratedDemand {
                arrival_time,
                duration: duration.max(1.0),
                demand: BaDemand {
                    id: DemandId(id),
                    bandwidth: vec![(pair, bw)],
                    beta,
                    price: bw * config.unit_price,
                    refund_ratio: refund,
                },
                schedule,
            });
        }
    }
    out.sort_by(|a, b| a.arrival_time.partial_cmp(&b.arrival_time).unwrap());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_net::topologies;
    use bate_routing::RoutingScheme;

    fn tunnels() -> (bate_net::Topology, TunnelSet) {
        let topo = topologies::testbed6();
        let t = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        (topo, t)
    }

    #[test]
    fn arrival_rate_matches_config() {
        let (_topo, tunnels) = tunnels();
        let cfg = WorkloadConfig::testbed(vec![0, 1, 2], 7);
        let horizon = 600.0 * 60.0; // 600 minutes
        let arrivals = generate(&cfg, &tunnels, horizon);
        let per_min = arrivals.len() as f64 / 600.0;
        assert!((per_min - 2.0).abs() < 0.2, "{per_min}/min");
        // Sorted by arrival time, within horizon.
        for w in arrivals.windows(2) {
            assert!(w[0].arrival_time <= w[1].arrival_time);
        }
        assert!(arrivals.iter().all(|a| a.arrival_time < horizon));
    }

    #[test]
    fn demand_fields_within_pools() {
        let (_topo, tunnels) = tunnels();
        let cfg = WorkloadConfig::testbed(vec![0, 5], 3);
        let arrivals = generate(&cfg, &tunnels, 3600.0);
        assert!(!arrivals.is_empty());
        for a in &arrivals {
            let (pair, bw) = a.demand.bandwidth[0];
            assert!(pair == 0 || pair == 5);
            assert!((10.0..=50.0).contains(&bw));
            assert!(cfg.availability_targets.contains(&a.demand.beta));
            assert!(a.duration >= 1.0);
            assert_eq!(a.demand.price, bw);
        }
        // Ids are unique.
        let mut ids: Vec<u64> = arrivals.iter().map(|a| a.demand.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), arrivals.len());
    }

    #[test]
    fn mean_duration_close_to_config() {
        let (_topo, tunnels) = tunnels();
        let cfg = WorkloadConfig::testbed(vec![0], 11);
        let arrivals = generate(&cfg, &tunnels, 2000.0 * 60.0);
        let mean: f64 = arrivals.iter().map(|a| a.duration).sum::<f64>() / arrivals.len() as f64;
        assert!((mean - 300.0).abs() < 30.0, "mean duration {mean} s");
    }

    #[test]
    fn matrix_bandwidth_model() {
        let (topo, tunnels) = tunnels();
        let matrices = bate_net::traffic::generate_matrices(&topo, 3, 30_000.0, 5);
        let mut cfg = WorkloadConfig::simulation(vec![0, 1, 2, 3], 3.0, 13);
        cfg.bandwidth = BandwidthModel::Matrix {
            matrices,
            scale: 1.0 / 5.0,
        };
        let arrivals = generate(&cfg, &tunnels, 3600.0);
        assert!(!arrivals.is_empty());
        for a in &arrivals {
            assert!(a.demand.bandwidth[0].1 >= 1.0);
        }
    }

    #[test]
    fn diurnal_flash_raises_mean_rate_and_stays_deterministic() {
        let (_topo, tunnels) = tunnels();
        let horizon = 600.0 * 60.0;
        let flat = generate(&WorkloadConfig::testbed(vec![0, 1], 7), &tunnels, horizon);
        let cfg = WorkloadConfig::diurnal_flash(vec![0, 1], 7);
        let shaped = generate(&cfg, &tunnels, horizon);
        // Flash windows (~2/15 of the time at 6x) push the mean rate well
        // above the flat profile; the sinusoid averages out.
        assert!(
            shaped.len() as f64 > flat.len() as f64 * 1.2,
            "flat {} vs shaped {}",
            flat.len(),
            shaped.len()
        );
        let again = generate(&cfg, &tunnels, horizon);
        assert_eq!(shaped.len(), again.len());
        for (x, y) in shaped.iter().zip(&again) {
            assert_eq!(x.arrival_time, y.arrival_time);
            assert_eq!(x.demand.bandwidth, y.demand.bandwidth);
            assert_eq!(x.demand.beta, y.demand.beta);
        }
    }

    #[test]
    fn flash_windows_cluster_arrivals() {
        let (_topo, tunnels) = tunnels();
        let cfg = WorkloadConfig::diurnal_flash(vec![0], 19);
        let horizon = 300.0 * 60.0;
        let arrivals = generate(&cfg, &tunnels, horizon);
        // Busiest minute should far exceed the base 2/min rate.
        let mut per_min = vec![0usize; 300];
        for a in &arrivals {
            per_min[(a.arrival_time / 60.0) as usize] += 1;
        }
        let max = per_min.iter().max().copied().unwrap();
        assert!(max >= 6, "busiest minute only {max} arrivals");
    }

    #[test]
    fn deterministic_under_seed() {
        let (_topo, tunnels) = tunnels();
        let cfg = WorkloadConfig::testbed(vec![0, 1], 42);
        let a = generate(&cfg, &tunnels, 3600.0);
        let b = generate(&cfg, &tunnels, 3600.0);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival_time, y.arrival_time);
            assert_eq!(x.demand.bandwidth, y.demand.bandwidth);
        }
    }
}
