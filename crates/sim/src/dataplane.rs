//! Delivered-bandwidth model.
//!
//! Given the current allocation and the current link state, how much
//! bandwidth does each demand actually receive?
//!
//! 1. Flow on a tunnel with any failed link is lost (until recovery
//!    reroutes it).
//! 2. If rerouted/rescaled traffic overloads a link, every flow crossing it
//!    is degraded by the link's `capacity / load` factor (FIFO queues drop
//!    proportionally); a flow's delivery factor is the minimum across its
//!    links. This is what turns TEAVAR's aggressive allocations into
//!    congestion loss after rescaling (Fig. 11).

use bate_core::{Allocation, BaDemand, TeContext};
use bate_net::Scenario;

/// Per-demand delivered bandwidth on each of its pairs.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// `(pair, demanded, delivered)` per requested pair.
    pub per_pair: Vec<(usize, f64, f64)>,
}

impl Delivery {
    /// Is the demand satisfied within the paper's 1 % downward-deviation
    /// tolerance (§5.1)?
    pub fn satisfied(&self) -> bool {
        self.per_pair.iter().all(|&(_, b, got)| got >= b * 0.99)
    }

    /// Delivered / demanded over the whole demand (for Fig. 8's CDF).
    pub fn ratio(&self) -> f64 {
        let b: f64 = self.per_pair.iter().map(|&(_, b, _)| b).sum();
        let got: f64 = self.per_pair.iter().map(|&(_, _, g)| g).sum();
        if b <= 0.0 {
            1.0
        } else {
            (got / b).min(1.0)
        }
    }

    /// Fraction of demanded bandwidth lost (for Fig. 11).
    pub fn loss_ratio(&self) -> f64 {
        1.0 - self.ratio()
    }
}

/// Compute deliveries for every demand under the current link state.
pub fn deliveries(
    ctx: &TeContext,
    allocation: &Allocation,
    demands: &[BaDemand],
    state: &Scenario,
) -> Vec<Delivery> {
    // Load per link counting only flows whose tunnel is fully up.
    let mut loads = vec![0.0f64; ctx.topo.num_links()];
    for demand in demands {
        for (t, f) in allocation.flows_of(demand.id) {
            let path = ctx.tunnels.path(t);
            if path.available_under(ctx.topo, state) {
                for &l in &path.links {
                    loads[l.index()] += f;
                }
            }
        }
    }
    // Degradation factor per link.
    let factor: Vec<f64> = ctx
        .topo
        .links()
        .map(|(l, def)| {
            if loads[l.index()] > def.capacity {
                def.capacity / loads[l.index()]
            } else {
                1.0
            }
        })
        .collect();

    demands
        .iter()
        .map(|demand| {
            let per_pair = demand
                .bandwidth
                .iter()
                .map(|&(pair, b)| {
                    let mut got = 0.0;
                    for (t, f) in allocation.flows_of(demand.id) {
                        if t.pair != pair {
                            continue;
                        }
                        let path = ctx.tunnels.path(t);
                        if !path.available_under(ctx.topo, state) {
                            continue;
                        }
                        let degrade = path
                            .links
                            .iter()
                            .map(|l| factor[l.index()])
                            .fold(1.0f64, f64::min);
                        got += f * degrade;
                    }
                    // Delivering more than demanded doesn't help anyone.
                    (pair, b, got.min(b))
                })
                .collect();
            Delivery { per_pair }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_core::BaDemand;
    use bate_net::{topologies, Scenario, ScenarioSet};
    use bate_routing::{RoutingScheme, TunnelId, TunnelSet};

    fn ctx_toy() -> (bate_net::Topology, TunnelSet, ScenarioSet) {
        let topo = topologies::toy4();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, 1);
        (topo, tunnels, scenarios)
    }

    #[test]
    fn clean_network_delivers_in_full() {
        let (topo, tunnels, scenarios) = ctx_toy();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let d = BaDemand::single(1, pair, 5000.0, 0.9);
        let mut a = Allocation::new();
        a.set(d.id, TunnelId { pair, tunnel: 0 }, 5000.0);
        let del = deliveries(&ctx, &a, &[d], &Scenario::all_up(&topo));
        assert!(del[0].satisfied());
        assert_eq!(del[0].ratio(), 1.0);
        assert_eq!(del[0].loss_ratio(), 0.0);
    }

    #[test]
    fn failed_tunnel_loses_its_flow() {
        let (topo, tunnels, scenarios) = ctx_toy();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let d = BaDemand::single(1, pair, 6000.0, 0.9);
        let mut a = Allocation::new();
        a.set(d.id, TunnelId { pair, tunnel: 0 }, 3000.0);
        a.set(d.id, TunnelId { pair, tunnel: 1 }, 3000.0);
        // Fail the first tunnel's first link.
        let g = topo
            .link(tunnels.path(TunnelId { pair, tunnel: 0 }).links[0])
            .group;
        let sc = Scenario::with_failures(&topo, &[g]);
        let del = deliveries(&ctx, &a, &[d], &sc);
        assert!(!del[0].satisfied());
        assert!((del[0].ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn congestion_degrades_proportionally() {
        // Two demands over the same single link, overcommitted 2x: each
        // delivers half.
        let mut topo = bate_net::Topology::new("t");
        let a = topo.add_node("A");
        let b = topo.add_node("B");
        topo.add_duplex_link(a, b, 1000.0, 0.001);
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(1));
        let scenarios = ScenarioSet::enumerate(&topo, 1);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let pair = tunnels.pair_index(a, b).unwrap();
        let d1 = BaDemand::single(1, pair, 1000.0, 0.9);
        let d2 = BaDemand::single(2, pair, 1000.0, 0.9);
        let mut alloc = Allocation::new();
        alloc.set(d1.id, TunnelId { pair, tunnel: 0 }, 1000.0);
        alloc.set(d2.id, TunnelId { pair, tunnel: 0 }, 1000.0);
        let del = deliveries(&ctx, &alloc, &[d1, d2], &Scenario::all_up(&topo));
        for d in &del {
            assert!((d.ratio() - 0.5).abs() < 1e-9, "{}", d.ratio());
            assert!(!d.satisfied());
        }
    }
}
