//! The simulator's event queue.
//!
//! Time is `f64` seconds. Ties are broken by insertion sequence so runs are
//! fully deterministic under a fixed seed.

use bate_core::{BaDemand, DemandId};
use bate_net::GroupId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Things that can happen.
#[derive(Debug, Clone)]
pub enum Event {
    /// A new BA demand arrives and asks for admission.
    Arrival(BaDemand),
    /// An admitted demand's lifetime ends.
    Departure(DemandId),
    /// A fate group goes down.
    LinkFailure(GroupId),
    /// A fate group comes back.
    LinkRepair(GroupId),
    /// Periodic traffic-scheduling round.
    ScheduleRound,
    /// Delayed application of a recovery allocation (models computation /
    /// activation latency after a failure).
    ApplyRecovery(u64),
}

struct Entry {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap: earliest time first, then lowest sequence.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic time-ordered event queue.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl EventQueue {
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedule `event` at absolute time `time` (seconds).
    pub fn push(&mut self, time: f64, event: Event) {
        assert!(time.is_finite() && time >= 0.0, "bad event time {time}");
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_sequence() {
        let mut q = EventQueue::new();
        q.push(5.0, Event::ScheduleRound);
        q.push(1.0, Event::LinkFailure(GroupId(0)));
        q.push(5.0, Event::LinkRepair(GroupId(0)));
        let (t1, e1) = q.pop().unwrap();
        assert_eq!(t1, 1.0);
        assert!(matches!(e1, Event::LinkFailure(_)));
        // Same-time events come out in insertion order.
        let (_, e2) = q.pop().unwrap();
        assert!(matches!(e2, Event::ScheduleRound));
        let (_, e3) = q.pop().unwrap();
        assert!(matches!(e3, Event::LinkRepair(_)));
        assert!(q.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "bad event time")]
    fn rejects_nan_times() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, Event::ScheduleRound);
    }
}
