//! Monte-Carlo cross-validation of the analytic availability calculus.
//!
//! The scheduler's guarantees rest on scenario-probability arithmetic
//! (products of independent per-group failure probabilities, pruned
//! enumeration, per-demand collapsing). This module estimates the same
//! quantities by sampling raw link states, giving an independent check
//! that the analytic machinery is wired correctly — the reproduction's
//! equivalent of the paper's testbed "emulate failures with a dice roll
//! every second" methodology.

use bate_core::{Allocation, BaDemand, TeContext};
use bate_net::{LinkSet, Scenario};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sample a raw network state: every fate group down independently with
/// its probability.
pub fn sample_state(ctx: &TeContext, rng: &mut StdRng) -> Scenario {
    let mut failed = LinkSet::new(ctx.topo.num_groups());
    for (g, def) in ctx.topo.groups() {
        if rng.gen_range(0.0f64..1.0) < def.failure_prob {
            failed.insert(g.index());
        }
    }
    Scenario {
        probability: bate_net::scenario::scenario_probability(ctx.topo, &failed),
        failed,
    }
}

/// Monte-Carlo estimate of a demand's availability under an allocation:
/// the fraction of sampled states in which its full bandwidth survives.
pub fn estimate_availability(
    ctx: &TeContext,
    allocation: &Allocation,
    demand: &BaDemand,
    samples: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0usize;
    for _ in 0..samples {
        let state = sample_state(ctx, &mut rng);
        if allocation.satisfied_under(ctx, demand, &state) {
            hits += 1;
        }
    }
    hits as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_core::scheduling::schedule_hardened;
    use bate_core::BaDemand;
    use bate_net::{topologies, ScenarioSet};
    use bate_routing::{RoutingScheme, TunnelSet};

    /// The analytic achieved availability and the Monte-Carlo estimate
    /// must agree within sampling error.
    #[test]
    fn analytic_matches_monte_carlo() {
        let topo = topologies::toy4();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, topo.num_groups());
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();

        // user1 of the motivating example: lands on the 99.8999% path.
        let d = BaDemand::single(1, pair, 6000.0, 0.99);
        let res = schedule_hardened(&ctx, std::slice::from_ref(&d)).unwrap();

        let analytic = res.allocation.achieved_availability(&ctx, &d);
        let sampled = estimate_availability(&ctx, &res.allocation, &d, 200_000, 7);
        // Availability ~0.999: standard error ~sqrt(p(1-p)/n) ≈ 7e-5.
        assert!(
            (analytic - sampled).abs() < 5e-4,
            "analytic {analytic} vs sampled {sampled}"
        );
    }

    /// Sampled state probabilities follow the scenario model: the all-up
    /// frequency matches `Π (1 - x_i)`.
    #[test]
    fn all_up_frequency_matches_product() {
        let topo = topologies::testbed6();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, 1);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 300_000;
        let mut up = 0usize;
        for _ in 0..n {
            if sample_state(&ctx, &mut rng).failed.is_empty() {
                up += 1;
            }
        }
        let freq = up as f64 / n as f64;
        let expected = topo.all_up_probability();
        assert!((freq - expected).abs() < 1e-3, "{freq} vs {expected}");
    }
}
