//! Seeded load-generator schedules for controller fan-in testing.
//!
//! Where [`crate::workload`] models the *paper's* demand process (Poisson
//! arrivals, exponential lifetimes, §5.1/§5.2 pools) for the simulator,
//! this module generates mgen-style *submission schedules* for driving the
//! real control plane over sockets: a deterministic list of
//! `(offset, demand)` pairs that a driver paces out against a wall clock
//! (or replays instantly for a throughput test). Two patterns, after
//! mgen's `PERIODIC` and burst modes:
//!
//! * [`ArrivalPattern::Steady`] — arrivals at a fixed mean rate, each gap
//!   jittered by a seeded ±50% factor (mean 1) so submissions don't
//!   phase-lock with the controller's poll wakeups.
//! * [`ArrivalPattern::Bursty`] — a steady base rate with periodic burst
//!   windows at a rate multiplier: the flash-crowd fan-in that batched
//!   admission exists to absorb.
//!
//! The schedule is a pure function of the profile (seed included): no
//! wall clock, no global RNG — the same profile always yields the same
//! byte-for-byte schedule, which is what lets `scripts/loadcheck.sh` pin
//! throughput floors against a known workload.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// When submissions arrive, mgen-style.
#[derive(Debug, Clone)]
pub enum ArrivalPattern {
    /// Fixed mean rate (submissions per minute), jittered gaps.
    Steady { per_min: f64 },
    /// `base_per_min` background with a `multiplier`× burst window of
    /// `len_s` seconds opening every `every_s` seconds.
    Bursty {
        base_per_min: f64,
        multiplier: f64,
        every_s: f64,
        len_s: f64,
    },
}

impl ArrivalPattern {
    /// Instantaneous rate in submissions per second at offset `t`.
    fn rate_at(&self, t: f64) -> f64 {
        match self {
            ArrivalPattern::Steady { per_min } => per_min / 60.0,
            ArrivalPattern::Bursty {
                base_per_min,
                multiplier,
                every_s,
                len_s,
            } => {
                let phase = t % every_s;
                let m = if phase < *len_s { *multiplier } else { 1.0 };
                base_per_min / 60.0 * m
            }
        }
    }

    /// Mean rate in submissions per minute over one pattern period.
    pub fn mean_per_min(&self) -> f64 {
        match self {
            ArrivalPattern::Steady { per_min } => *per_min,
            ArrivalPattern::Bursty {
                base_per_min,
                multiplier,
                every_s,
                len_s,
            } => {
                let frac = (len_s / every_s).min(1.0);
                base_per_min * (frac * multiplier + (1.0 - frac))
            }
        }
    }
}

/// A load profile: arrival pattern plus the demand-field pools.
#[derive(Debug, Clone)]
pub struct LoadProfile {
    pub pattern: ArrivalPattern,
    /// `(src, dst)` DC-name pairs to draw from, uniformly.
    pub pairs: Vec<(String, String)>,
    /// Uniform bandwidth range in Mbps (testbed: 10–50).
    pub bandwidth: (f64, f64),
    /// Availability targets to draw from, uniformly.
    pub betas: Vec<f64>,
    pub seed: u64,
}

impl LoadProfile {
    /// Steady fan-in over the given pairs: §5.1 testbed sizes (10–50
    /// Mbps) with the mid-tier simulation availability targets. The
    /// fan-in workload deliberately avoids the 0.999+ testbed targets:
    /// at the pool sizes a throughput test accumulates, those make the
    /// scheduling LP the bottleneck, and this workload exists to load
    /// the wire/admission path. Override `betas` to stress the solver.
    pub fn steady(per_min: f64, pairs: Vec<(String, String)>, seed: u64) -> LoadProfile {
        LoadProfile {
            pattern: ArrivalPattern::Steady { per_min },
            pairs,
            bandwidth: (10.0, 50.0),
            betas: vec![0.9, 0.95, 0.99],
            seed,
        }
    }

    /// Bursty fan-in: `base_per_min` background with 6× bursts of 2 s
    /// opening every 15 s — the exp2 cross-traffic profile compressed
    /// from minutes to seconds for socket-scale tests.
    pub fn bursty(base_per_min: f64, pairs: Vec<(String, String)>, seed: u64) -> LoadProfile {
        LoadProfile {
            pattern: ArrivalPattern::Bursty {
                base_per_min,
                multiplier: 6.0,
                every_s: 15.0,
                len_s: 2.0,
            },
            pairs,
            bandwidth: (10.0, 50.0),
            betas: vec![0.9, 0.95, 0.99],
            seed,
        }
    }

    /// All ordered DC pairs of a topology, by node name.
    pub fn all_pairs(topo: &bate_net::Topology) -> Vec<(String, String)> {
        let names: Vec<String> = (0..topo.num_nodes())
            .map(|i| topo.node_name(bate_net::NodeId(i)).to_string())
            .collect();
        let mut pairs = Vec::new();
        for s in &names {
            for d in &names {
                if s != d {
                    pairs.push((s.clone(), d.clone()));
                }
            }
        }
        pairs
    }
}

/// One scheduled submission: submit at `offset_s` from test start.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadEvent {
    pub offset_s: f64,
    pub id: u64,
    pub src: String,
    pub dst: String,
    pub bandwidth: f64,
    pub beta: f64,
}

/// Generate the full submission schedule over `[0, horizon_s)`, sorted by
/// offset, ids `id_base..`. Deterministic in the profile.
pub fn schedule(profile: &LoadProfile, horizon_s: f64, id_base: u64) -> Vec<LoadEvent> {
    assert!(!profile.pairs.is_empty(), "load profile needs at least one pair");
    let mut rng = StdRng::seed_from_u64(profile.seed);
    let mut out = Vec::new();
    let mut t = 0.0f64;
    let mut id = id_base;
    loop {
        let rate = profile.pattern.rate_at(t).max(1e-9);
        // Jittered gap with mean 1/rate: ±50% keeps arrivals from
        // phase-locking while leaving the mean rate exact.
        t += rng.gen_range(0.5..1.5) / rate;
        if t >= horizon_s {
            break;
        }
        let (src, dst) = profile.pairs[rng.gen_range(0..profile.pairs.len())].clone();
        let (lo, hi) = profile.bandwidth;
        let bandwidth = rng.gen_range(lo..=hi);
        let beta = profile.betas[rng.gen_range(0..profile.betas.len())];
        out.push(LoadEvent {
            offset_s: t,
            id,
            src,
            dst,
            bandwidth,
            beta,
        });
        id += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs() -> Vec<(String, String)> {
        LoadProfile::all_pairs(&bate_net::topologies::testbed6())
    }

    #[test]
    fn steady_schedule_hits_the_target_rate() {
        let profile = LoadProfile::steady(1200.0, pairs(), 7);
        let events = schedule(&profile, 60.0, 1);
        let per_min = events.len() as f64;
        assert!(
            (per_min - 1200.0).abs() < 120.0,
            "steady 1200/min produced {per_min}/min"
        );
        for w in events.windows(2) {
            assert!(w[0].offset_s <= w[1].offset_s, "schedule must be sorted");
        }
        assert!(events.iter().all(|e| e.offset_s < 60.0));
        assert!(events.iter().all(|e| e.src != e.dst));
        assert!(events
            .iter()
            .all(|e| (10.0..=50.0).contains(&e.bandwidth)));
    }

    #[test]
    fn bursty_schedule_clusters_and_mean_rate_matches() {
        let profile = LoadProfile::bursty(600.0, pairs(), 11);
        let horizon = 60.0;
        let events = schedule(&profile, horizon, 1);
        let expected = profile.pattern.mean_per_min();
        let got = events.len() as f64;
        assert!(
            (got - expected).abs() < expected * 0.2,
            "bursty mean {expected}/min produced {got}/min"
        );
        // Per-second counts: burst seconds run ~6× base, so the busiest
        // second must clearly exceed the base 10/s.
        let mut per_sec = vec![0usize; horizon as usize];
        for e in &events {
            per_sec[e.offset_s as usize] += 1;
        }
        let max = per_sec.iter().max().copied().unwrap();
        assert!(max >= 20, "busiest second only {max} arrivals (base 10/s)");
    }

    #[test]
    fn schedule_is_deterministic_and_ids_are_unique() {
        let profile = LoadProfile::bursty(900.0, pairs(), 42);
        let a = schedule(&profile, 30.0, 100);
        let b = schedule(&profile, 30.0, 100);
        assert_eq!(a, b, "same profile must yield the same schedule");
        let mut ids: Vec<u64> = a.iter().map(|e| e.id).collect();
        assert_eq!(ids.first(), Some(&100));
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), a.len());
    }
}
