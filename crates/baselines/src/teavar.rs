//! TEAVAR — Traffic Engineering Applying Value at Risk (Bogle et al.,
//! SIGCOMM '19).
//!
//! TEAVAR picks one network-wide availability level β and minimizes the
//! conditional value at risk (CVaR_β) of bandwidth loss over probabilistic
//! failure scenarios, via the Rockafellar-Uryasev linearization:
//!
//! ```text
//! minimize  α + 1/(1-β) Σ_z p_z s_z
//! s.t.      s_z ≥ loss_z - α,  s_z ≥ 0
//!           loss_z = Σ_d w_d u_{d,z},   u_{d,z} ≥ 1 - delivered/b (per pair)
//! ```
//!
//! The one-size-fits-all β is TEAVAR's core limitation in the BATE story
//! (Fig. 2(c)): it exploits failure probabilities well but cannot give one
//! user 99.99 % while another needs only 90 %.
//!
//! Scenario handling: the `s_z` variables are global (they couple all
//! demands), so the per-demand collapse of `bate-core` does not apply;
//! instead scenarios are collapsed *globally* by the joint availability
//! mask of every demand's tunnels, which is equally exact.

use crate::swan::{add_capacity_rows, extract};
use crate::traits::TeAlgorithm;
use bate_core::{Allocation, BaDemand, TeContext};
use bate_lp::{Problem, Relation, Sense, SolveError, VarId};
use bate_net::LinkSet;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
pub struct Teavar {
    /// The single network-wide availability level β.
    pub beta: f64,
}

impl Teavar {
    pub fn new(beta: f64) -> Teavar {
        assert!((0.0..1.0).contains(&beta));
        Teavar { beta }
    }
}

impl TeAlgorithm for Teavar {
    fn name(&self) -> &'static str {
        "TEAVAR"
    }

    fn allocate(&self, ctx: &TeContext, demands: &[BaDemand]) -> Result<Allocation, SolveError> {
        let mut p = Problem::new(Sense::Minimize);

        // Flow variables; each pair is capped at its demanded rate, and a
        // small reward pushes toward serving demands fully even in the
        // no-risk corner cases.
        let mut f_vars: Vec<Vec<Vec<VarId>>> = Vec::with_capacity(demands.len());
        for demand in demands {
            let mut per = Vec::new();
            for &(pair, b) in &demand.bandwidth {
                let vars: Vec<VarId> = (0..ctx.tunnels.tunnels(pair).len())
                    .map(|t| {
                        let v = p.add_var(&format!("f[{}][{pair}][{t}]", demand.id.0));
                        p.set_objective(v, -1e-7);
                        v
                    })
                    .collect();
                let terms: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
                if !terms.is_empty() {
                    p.add_constraint(&terms, Relation::Le, b);
                }
                per.push(vars);
            }
            f_vars.push(per);
        }
        add_capacity_rows(ctx, demands, &f_vars, &mut p, 1.0);

        // Global scenario collapse: joint tunnel-availability mask.
        let tunnel_groups: Vec<Vec<Vec<LinkSet>>> = demands
            .iter()
            .map(|d| {
                d.bandwidth
                    .iter()
                    .map(|&(pair, _)| {
                        ctx.tunnels
                            .tunnels(pair)
                            .iter()
                            .map(|path| {
                                let mut s = LinkSet::new(ctx.topo.num_groups());
                                for g in path.groups(ctx.topo) {
                                    s.insert(g.index());
                                }
                                s
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();

        let mut states: Vec<(Vec<bool>, f64)> = Vec::new();
        let mut state_index: HashMap<Vec<bool>, usize> = HashMap::new();
        for z in ctx.scenarios.iter() {
            let mut mask = Vec::new();
            for per_demand in &tunnel_groups {
                for per_pair in per_demand {
                    for groups in per_pair {
                        mask.push(!groups.intersects(&z.failed));
                    }
                }
            }
            match state_index.get(&mask) {
                Some(&i) => states[i].1 += z.probability,
                None => {
                    state_index.insert(mask.clone(), states.len());
                    states.push((mask, z.probability));
                }
            }
        }

        // CVaR machinery. Demand weights: bandwidth share.
        let total_bw: f64 = demands.iter().map(|d| d.total_bandwidth()).sum();
        let alpha = p.add_var("alpha");
        p.set_objective(alpha, 1.0);
        let tail = 1.0 / (1.0 - self.beta);

        for (si, (mask, prob)) in states.iter().enumerate() {
            let s_z = p.add_var(&format!("s[{si}]"));
            p.set_objective(s_z, tail * prob);

            // loss_z = Σ_d w_d u_{d,si};  s_z + α - loss_z >= 0.
            let mut loss_terms: Vec<(VarId, f64)> = vec![(s_z, 1.0), (alpha, 1.0)];
            let mut flat = 0usize;
            for (di, demand) in demands.iter().enumerate() {
                let w = demand.total_bandwidth() / total_bw.max(1e-12);
                let u = p.add_var(&format!("u[{}][{si}]", demand.id.0));
                for (ki, &(_, b)) in demand.bandwidth.iter().enumerate() {
                    // u >= 1 - Σ f v / b  ⇔  b·u + Σ f v >= b.
                    let mut terms: Vec<(VarId, f64)> = vec![(u, b)];
                    for (ti, &fv) in f_vars[di][ki].iter().enumerate() {
                        if mask[flat + ti] {
                            terms.push((fv, 1.0));
                        }
                    }
                    p.add_constraint(&terms, Relation::Ge, b);
                    flat += f_vars[di][ki].len();
                }
                loss_terms.push((u, -w));
            }
            p.add_constraint(&loss_terms, Relation::Ge, 0.0);
        }

        let sol = p.solve()?;
        Ok(extract(ctx, demands, &f_vars, &sol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_net::{topologies, Scenario, ScenarioSet};
    use bate_routing::{RoutingScheme, TunnelSet};

    fn ctx_toy() -> (bate_net::Topology, TunnelSet, ScenarioSet) {
        let topo = topologies::toy4();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        (topo, tunnels, scenarios)
    }

    #[test]
    fn teavar_splits_like_fig2c() {
        let (topo, tunnels, scenarios) = ctx_toy();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        // CVaR on *fractional* loss rewards splitting: losing half the
        // bandwidth in the tail beats losing all of it — exactly the
        // split allocations Fig. 2(c) shows for TEAVAR. Consequence: part
        // of the traffic rides the risky path and dies with it.
        let d = BaDemand::single(1, pair, 6000.0, 0.99);
        let alloc = Teavar::new(0.999).allocate(&ctx, std::slice::from_ref(&d)).unwrap();
        let used_tunnels = alloc.flows_of(d.id).count();
        assert_eq!(used_tunnels, 2, "TEAVAR splits across both paths");
        let g = topo.link(topo.find_link(n("DC1"), n("DC2")).unwrap()).group;
        let sc = Scenario::with_failures(&topo, &[g]);
        let survived = alloc.delivered(&ctx, d.id, pair, &sc);
        assert!(
            survived > 0.0 && survived < 6000.0 - 1.0,
            "risky-path share is lost on failure: {survived}"
        );
    }

    #[test]
    fn teavar_serves_full_demand_when_riskless() {
        let (topo, tunnels, scenarios) = ctx_toy();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let d = BaDemand::single(1, pair, 3000.0, 0.9);
        let alloc = Teavar::new(0.99).allocate(&ctx, std::slice::from_ref(&d)).unwrap();
        let total: f64 = alloc.flows_of(d.id).map(|(_, f)| f).sum();
        assert!((total - 3000.0).abs() < 1.0, "{total}");
        assert!(alloc.respects_capacity(&ctx, 1e-6));
    }

    #[test]
    fn one_size_fits_all_limitation() {
        // The Fig. 2(c) story: with both users demanding 18 Gbps total,
        // TEAVAR at a single β can serve both, but user1's achieved
        // availability lands below its 99 % requirement because part of its
        // traffic rides the risky path.
        let topo = topologies::toy4();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, topo.num_groups());
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let user1 = BaDemand::single(1, pair, 6000.0, 0.99);
        let user2 = BaDemand::single(2, pair, 12_000.0, 0.90);
        let alloc = Teavar::new(0.999)
            .allocate(&ctx, &[user1.clone(), user2.clone()])
            .unwrap();
        // Both demands are fully allocated in the no-failure case...
        let all_up = Scenario::all_up(&topo);
        assert!(alloc.delivered(&ctx, user1.id, pair, &all_up) >= 6000.0 - 1.0);
        assert!(alloc.delivered(&ctx, user2.id, pair, &all_up) >= 12_000.0 - 1.0);
        // ...but at least one of the two misses its own availability
        // target (capacity forces 8 Gbps across the risky path, and TEAVAR
        // has no notion of *whose* traffic should avoid it).
        let met1 = alloc.meets_target(&ctx, &user1);
        let met2 = alloc.meets_target(&ctx, &user2);
        assert!(
            !(met1 && met2),
            "TEAVAR cannot satisfy both heterogeneous targets here"
        );
    }
}
