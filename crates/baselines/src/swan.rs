//! SWAN-style TE: maximize total delivered throughput (§5.2 setting).
//!
//! The real SWAN (Hong et al., SIGCOMM '13) approximates max-min fairness
//! across priority classes; the BATE evaluation configures it to "maximize
//! the total throughput of all users", which is the LP implemented here:
//! per-demand allocations are capped at the demanded rate, link capacities
//! bind, failures are ignored entirely.

use crate::traits::TeAlgorithm;
use bate_core::{Allocation, BaDemand, TeContext};
use bate_lp::{Problem, Relation, Sense, SolveError, VarId};
use bate_routing::TunnelId;

#[derive(Debug, Default, Clone, Copy)]
pub struct Swan;

impl Swan {
    pub fn new() -> Swan {
        Swan
    }
}

impl TeAlgorithm for Swan {
    fn name(&self) -> &'static str {
        "SWAN"
    }

    fn allocate(&self, ctx: &TeContext, demands: &[BaDemand]) -> Result<Allocation, SolveError> {
        let mut p = Problem::new(Sense::Maximize);
        let mut f_vars: Vec<Vec<Vec<VarId>>> = Vec::with_capacity(demands.len());
        for demand in demands {
            let mut per = Vec::new();
            for &(pair, b) in &demand.bandwidth {
                let vars: Vec<VarId> = (0..ctx.tunnels.tunnels(pair).len())
                    .map(|t| {
                        let v = p.add_var(&format!("f[{}][{pair}][{t}]", demand.id.0));
                        p.set_objective(v, 1.0);
                        v
                    })
                    .collect();
                // Never allocate beyond the demanded rate.
                let terms: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
                if !terms.is_empty() {
                    p.add_constraint(&terms, Relation::Le, b);
                }
                per.push(vars);
            }
            f_vars.push(per);
        }
        add_capacity_rows(ctx, demands, &f_vars, &mut p, 1.0);
        let sol = p.solve()?;
        Ok(extract(ctx, demands, &f_vars, &sol))
    }
}

/// Shared helper: add one capacity row per used link, scaled by `headroom`
/// (1.0 = full capacity).
pub(crate) fn add_capacity_rows(
    ctx: &TeContext,
    demands: &[BaDemand],
    f_vars: &[Vec<Vec<VarId>>],
    p: &mut Problem,
    headroom: f64,
) {
    let mut per_link: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); ctx.topo.num_links()];
    for (di, demand) in demands.iter().enumerate() {
        for (ki, &(pair, _)) in demand.bandwidth.iter().enumerate() {
            for (ti, &fv) in f_vars[di][ki].iter().enumerate() {
                for &l in &ctx.tunnels.path(TunnelId { pair, tunnel: ti }).links {
                    per_link[l.index()].push((fv, 1.0));
                }
            }
        }
    }
    for (li, terms) in per_link.iter().enumerate() {
        if !terms.is_empty() {
            let cap = ctx.topo.link(bate_net::LinkId(li)).capacity * headroom;
            p.add_constraint(terms, Relation::Le, cap);
        }
    }
}

/// Shared helper: read flows out of a solution.
pub(crate) fn extract(
    ctx: &TeContext,
    demands: &[BaDemand],
    f_vars: &[Vec<Vec<VarId>>],
    sol: &bate_lp::Solution,
) -> Allocation {
    let _ = ctx;
    let mut alloc = Allocation::new();
    for (di, demand) in demands.iter().enumerate() {
        for (ki, &(pair, _)) in demand.bandwidth.iter().enumerate() {
            for (ti, &fv) in f_vars[di][ki].iter().enumerate() {
                let f = sol[fv];
                if f > 1e-9 {
                    alloc.set(demand.id, TunnelId { pair, tunnel: ti }, f);
                }
            }
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_net::{topologies, ScenarioSet};
    use bate_routing::{RoutingScheme, TunnelSet};

    #[test]
    fn swan_fills_demands_up_to_capacity() {
        let topo = topologies::toy4();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, 1);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let d = BaDemand::single(1, pair, 6000.0, 0.99);
        let alloc = Swan.allocate(&ctx, std::slice::from_ref(&d)).unwrap();
        let total: f64 = alloc.flows_of(d.id).map(|(_, f)| f).sum();
        assert!(
            (total - 6000.0).abs() < 1e-6,
            "demand fully served: {total}"
        );
        assert!(alloc.respects_capacity(&ctx, 1e-9));
    }

    #[test]
    fn swan_caps_at_capacity_under_overload() {
        let topo = topologies::toy4();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, 1);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let d = BaDemand::single(1, pair, 50_000.0, 0.5);
        let alloc = Swan.allocate(&ctx, std::slice::from_ref(&d)).unwrap();
        let total: f64 = alloc.flows_of(d.id).map(|(_, f)| f).sum();
        // DC1's egress cut is 20 Gbps.
        assert!((total - 20_000.0).abs() < 1e-6, "{total}");
        assert!(alloc.respects_capacity(&ctx, 1e-9));
    }
}
