//! SMORE-style TE: load-balanced rate adaptation (Kumar et al., NSDI '18).
//!
//! SMORE pairs an oblivious (Räcke) path set with per-interval rate
//! adaptation that keeps the maximum link utilization low. Over the shared
//! tunnel set, we reproduce the rate-adaptation half as a lexicographic LP:
//! first maximize total delivered throughput, then (via a small weight)
//! minimize the worst link utilization among throughput-optimal solutions.
//! Combined with the `Oblivious` routing scheme of `bate-routing` this
//! matches the paper's SMORE configuration (Fig. 18 studies the path-set
//! half separately).

use crate::swan::{add_capacity_rows, extract};
use crate::traits::TeAlgorithm;
use bate_core::{Allocation, BaDemand, TeContext};
use bate_lp::{Problem, Relation, Sense, SolveError, VarId};
use bate_routing::TunnelId;

#[derive(Debug, Default, Clone, Copy)]
pub struct Smore;

impl Smore {
    pub fn new() -> Smore {
        Smore
    }
}

impl TeAlgorithm for Smore {
    fn name(&self) -> &'static str {
        "SMORE"
    }

    fn allocate(&self, ctx: &TeContext, demands: &[BaDemand]) -> Result<Allocation, SolveError> {
        let mut p = Problem::new(Sense::Maximize);
        let mut f_vars: Vec<Vec<Vec<VarId>>> = Vec::with_capacity(demands.len());
        for demand in demands {
            let mut per = Vec::new();
            for &(pair, b) in &demand.bandwidth {
                let vars: Vec<VarId> = (0..ctx.tunnels.tunnels(pair).len())
                    .map(|t| {
                        let v = p.add_var(&format!("f[{}][{pair}][{t}]", demand.id.0));
                        p.set_objective(v, 1.0);
                        v
                    })
                    .collect();
                let terms: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
                if !terms.is_empty() {
                    p.add_constraint(&terms, Relation::Le, b);
                }
                per.push(vars);
            }
            f_vars.push(per);
        }
        add_capacity_rows(ctx, demands, &f_vars, &mut p, 1.0);

        // Load balancing: U >= load_e / c_e for every link; subtract a
        // small multiple of U from the objective. The weight is small
        // relative to one unit of throughput so throughput stays lexically
        // first, but enough to break ties toward spread-out allocations.
        let u = p.add_var("max_utilization");
        let balance_weight = 0.001
            * demands
                .iter()
                .map(|d| d.total_bandwidth())
                .sum::<f64>()
                .max(1.0);
        p.set_objective(u, -balance_weight);
        let mut per_link: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); ctx.topo.num_links()];
        for (di, demand) in demands.iter().enumerate() {
            for (ki, &(pair, _)) in demand.bandwidth.iter().enumerate() {
                for (ti, &fv) in f_vars[di][ki].iter().enumerate() {
                    for &l in &ctx.tunnels.path(TunnelId { pair, tunnel: ti }).links {
                        per_link[l.index()].push((fv, 1.0));
                    }
                }
            }
        }
        for (li, terms) in per_link.iter().enumerate() {
            if !terms.is_empty() {
                let cap = ctx.topo.link(bate_net::LinkId(li)).capacity;
                // load/cap - U <= 0
                let mut t: Vec<(VarId, f64)> = terms.iter().map(|&(v, c)| (v, c / cap)).collect();
                t.push((u, -1.0));
                p.add_constraint(&t, Relation::Le, 0.0);
            }
        }

        let sol = p.solve()?;
        Ok(extract(ctx, demands, &f_vars, &sol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swan::Swan;
    use bate_net::{topologies, ScenarioSet};
    use bate_routing::{RoutingScheme, TunnelSet};

    #[test]
    fn smore_spreads_load_across_paths() {
        let topo = topologies::toy4();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, 1);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let d = BaDemand::single(1, pair, 8000.0, 0.9);
        let alloc = Smore.allocate(&ctx, std::slice::from_ref(&d)).unwrap();
        let total: f64 = alloc.flows_of(d.id).map(|(_, f)| f).sum();
        assert!((total - 8000.0).abs() < 1e-6);
        // Both 10 Gbps paths must carry ~4 Gbps each (balanced), unlike a
        // throughput-only LP which may put all 8 on one path.
        let flows: Vec<f64> = alloc.flows_of(d.id).map(|(_, f)| f).collect();
        assert_eq!(flows.len(), 2, "should use both tunnels");
        for f in flows {
            assert!((f - 4000.0).abs() < 1.0, "unbalanced flow {f}");
        }
    }

    #[test]
    fn smore_matches_swan_throughput() {
        // Lexicographic: SMORE's total throughput equals SWAN's.
        let topo = topologies::testbed6();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
        let scenarios = ScenarioSet::enumerate(&topo, 1);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let p13 = tunnels.pair_index(n("DC1"), n("DC3")).unwrap();
        let p25 = tunnels.pair_index(n("DC2"), n("DC5")).unwrap();
        let demands = vec![
            BaDemand::single(1, p13, 900.0, 0.9),
            BaDemand::single(2, p25, 700.0, 0.9),
        ];
        let swan_total = Swan.allocate(&ctx, &demands).unwrap().total_allocated();
        let smore_total = Smore.allocate(&ctx, &demands).unwrap().total_allocated();
        assert!(
            (swan_total - smore_total).abs() < swan_total * 0.01 + 1e-6,
            "swan {swan_total} vs smore {smore_total}"
        );
    }
}
