//! B4-style TE: max-min fair progressive filling (Jain et al., SIGCOMM '13).
//!
//! B4 hands out bandwidth in rounds of "fair share": every unfrozen demand
//! grows its allocation proportionally to its demanded rate until either it
//! is fully served or every tunnel it can use hits a saturated link. This
//! implementation is the classic water-filling loop over the shared tunnel
//! set, stepping the fair-share fraction in 1 % increments of each demand
//! (B4's actual implementation also quantizes fair shares).

use crate::traits::TeAlgorithm;
use bate_core::{Allocation, BaDemand, TeContext};
use bate_lp::SolveError;
use bate_routing::TunnelId;

#[derive(Debug, Default, Clone, Copy)]
pub struct B4;

impl B4 {
    pub fn new() -> B4 {
        B4
    }
}

/// Fraction of each demand handed out per filling round.
const STEP: f64 = 0.01;

impl TeAlgorithm for B4 {
    fn name(&self) -> &'static str {
        "B4"
    }

    fn allocate(&self, ctx: &TeContext, demands: &[BaDemand]) -> Result<Allocation, SolveError> {
        let mut residual: Vec<f64> = ctx.topo.links().map(|(_, l)| l.capacity).collect();
        let mut alloc = Allocation::new();
        // Per (demand, local pair): fraction served so far.
        let mut served: Vec<Vec<f64>> = demands
            .iter()
            .map(|d| vec![0.0; d.bandwidth.len()])
            .collect();
        let mut frozen: Vec<Vec<bool>> = demands
            .iter()
            .map(|d| vec![false; d.bandwidth.len()])
            .collect();

        loop {
            let mut progressed = false;
            for (di, demand) in demands.iter().enumerate() {
                for (ki, &(pair, b)) in demand.bandwidth.iter().enumerate() {
                    if frozen[di][ki] {
                        continue;
                    }
                    if served[di][ki] >= 1.0 - 1e-9 {
                        frozen[di][ki] = true;
                        continue;
                    }
                    let want = (STEP * b).min((1.0 - served[di][ki]) * b);
                    // Place the increment on the tunnel with the most
                    // residual headroom (B4 splits via multipath groups;
                    // per-round best-tunnel placement converges to the same
                    // water level).
                    let tunnels = ctx.tunnels.tunnels(pair);
                    let mut best: Option<(usize, f64)> = None;
                    for (ti, path) in tunnels.iter().enumerate() {
                        let cap = path
                            .links
                            .iter()
                            .map(|l| residual[l.index()])
                            .fold(f64::INFINITY, f64::min);
                        if cap > 1e-9 && best.is_none_or(|(_, c)| cap > c) {
                            best = Some((ti, cap));
                        }
                    }
                    match best {
                        Some((ti, cap)) => {
                            let f = want.min(cap);
                            let t = TunnelId { pair, tunnel: ti };
                            alloc.add(demand.id, t, f);
                            for &l in &ctx.tunnels.path(t).links {
                                residual[l.index()] -= f;
                            }
                            served[di][ki] += f / b;
                            progressed = true;
                        }
                        None => frozen[di][ki] = true, // bottlenecked
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        Ok(alloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_core::DemandId;
    use bate_net::{topologies, ScenarioSet};
    use bate_routing::{RoutingScheme, TunnelSet};

    fn ctx_toy() -> (bate_net::Topology, TunnelSet, ScenarioSet) {
        let topo = topologies::toy4();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, 1);
        (topo, tunnels, scenarios)
    }

    #[test]
    fn b4_serves_feasible_demands_fully() {
        let (topo, tunnels, scenarios) = ctx_toy();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let d = BaDemand::single(1, pair, 5000.0, 0.9);
        let alloc = B4.allocate(&ctx, std::slice::from_ref(&d)).unwrap();
        let total: f64 = alloc.flows_of(d.id).map(|(_, f)| f).sum();
        assert!((total - 5000.0).abs() < 1.0, "{total}");
        assert!(alloc.respects_capacity(&ctx, 1e-6));
    }

    #[test]
    fn b4_is_max_min_fair_under_contention() {
        let (topo, tunnels, scenarios) = ctx_toy();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        // Two equal demands of 15 Gbps share a 20 Gbps cut: fair share is
        // 10 Gbps each (2/3 of demand), not 15/5.
        let d1 = BaDemand::single(1, pair, 15_000.0, 0.9);
        let d2 = BaDemand::single(2, pair, 15_000.0, 0.9);
        let alloc = B4.allocate(&ctx, &[d1, d2]).unwrap();
        let t1: f64 = alloc.flows_of(DemandId(1)).map(|(_, f)| f).sum();
        let t2: f64 = alloc.flows_of(DemandId(2)).map(|(_, f)| f).sum();
        assert!((t1 - t2).abs() < 300.0, "unfair split: {t1} vs {t2}");
        assert!((t1 + t2 - 20_000.0).abs() < 10.0, "cut not saturated");
        assert!(alloc.respects_capacity(&ctx, 1e-6));
    }

    #[test]
    fn b4_proportional_to_demand_size() {
        let (topo, tunnels, scenarios) = ctx_toy();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        // 20 Gbps cut, demands 30 G and 10 G: proportional filling gives
        // each the same *fraction* until freeze: 30G·x + 10G·x = 20G at
        // x = 0.5 → 15 G and 5 G.
        let d1 = BaDemand::single(1, pair, 30_000.0, 0.9);
        let d2 = BaDemand::single(2, pair, 10_000.0, 0.9);
        let alloc = B4.allocate(&ctx, &[d1, d2]).unwrap();
        let t1: f64 = alloc.flows_of(DemandId(1)).map(|(_, f)| f).sum();
        let t2: f64 = alloc.flows_of(DemandId(2)).map(|(_, f)| f).sum();
        assert!((t1 / 30_000.0 - t2 / 10_000.0).abs() < 0.05, "{t1} {t2}");
    }
}
