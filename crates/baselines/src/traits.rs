//! The common interface all TE algorithms (BATE and baselines) expose to
//! the simulator and benchmark harness.

use bate_core::{Allocation, BaDemand, TeContext};
use bate_lp::SolveError;

/// A traffic-engineering algorithm: allocate tunnel bandwidth for a set of
/// admitted demands.
pub trait TeAlgorithm: Send + Sync {
    /// Display name used in figures ("BATE", "TEAVAR", ...).
    fn name(&self) -> &'static str;

    /// Compute an allocation. Baselines are best-effort: they always return
    /// an allocation (possibly leaving demands short); only BATE's
    /// scheduler reports infeasibility, because only BATE gives hard
    /// guarantees.
    fn allocate(&self, ctx: &TeContext, demands: &[BaDemand]) -> Result<Allocation, SolveError>;
}

/// BATE's scheduler wrapped as a [`TeAlgorithm`] so the evaluation can
/// sweep all schemes uniformly.
pub struct Bate;

impl TeAlgorithm for Bate {
    fn name(&self) -> &'static str {
        "BATE"
    }

    fn allocate(&self, ctx: &TeContext, demands: &[BaDemand]) -> Result<Allocation, SolveError> {
        bate_core::scheduling::schedule_hardened(ctx, demands).map(|r| r.allocation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_net::{topologies, ScenarioSet};
    use bate_routing::{RoutingScheme, TunnelSet};

    #[test]
    fn bate_as_te_algorithm() {
        let topo = topologies::toy4();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let d = BaDemand::single(1, pair, 1000.0, 0.9);
        let alloc = Bate.allocate(&ctx, std::slice::from_ref(&d)).unwrap();
        assert!(alloc.meets_target(&ctx, &d));
        assert_eq!(Bate.name(), "BATE");
    }
}
