//! FFC — Traffic Engineering with Forward Fault Correction (Liu et al.,
//! SIGCOMM '14).
//!
//! FFC guarantees that the bandwidth promised to each demand survives *any*
//! combination of up to `l` link failures: for every such failure scenario,
//! the flow remaining on surviving tunnels must still cover the guarantee.
//! The LP maximizes the total guaranteed bandwidth (capped at the demanded
//! rates), with a tiny penalty on raw flow so protection capacity is not
//! allocated gratuitously. Because the guarantee quantifies over *all*
//! ≤ l-failure scenarios regardless of probability, FFC keeps reliable
//! links underutilized — the conservatism Fig. 2(b) illustrates.

use crate::swan::extract;
use crate::traits::TeAlgorithm;
use bate_core::profile::DemandProfile;
use bate_core::{Allocation, BaDemand, TeContext};
use bate_lp::{Problem, Relation, Sense, SolveError, VarId};
use bate_net::ScenarioSet;
use bate_routing::TunnelId;

#[derive(Debug, Clone, Copy)]
pub struct Ffc {
    /// Maximum number of concurrent fate-group failures to survive.
    pub max_failures: usize,
}

impl Ffc {
    pub fn new(max_failures: usize) -> Ffc {
        Ffc { max_failures }
    }
}

impl TeAlgorithm for Ffc {
    fn name(&self) -> &'static str {
        "FFC"
    }

    fn allocate(&self, ctx: &TeContext, demands: &[BaDemand]) -> Result<Allocation, SolveError> {
        // FFC's scenario universe is "every ≤ l failures", independent of
        // the probabilistic set in `ctx` — enumerate it locally and collapse
        // per demand.
        let ffc_scenarios = ScenarioSet::enumerate(ctx.topo, self.max_failures);
        let ffc_ctx = TeContext::new(ctx.topo, ctx.tunnels, &ffc_scenarios);

        let mut p = Problem::new(Sense::Maximize);
        let mut f_vars: Vec<Vec<Vec<VarId>>> = Vec::with_capacity(demands.len());
        let flow_penalty = 1e-4;

        for demand in demands {
            let mut per = Vec::new();
            for &(pair, _) in &demand.bandwidth {
                let vars: Vec<VarId> = (0..ctx.tunnels.tunnels(pair).len())
                    .map(|t| {
                        let v = p.add_var(&format!("f[{}][{pair}][{t}]", demand.id.0));
                        p.set_objective(v, -flow_penalty);
                        v
                    })
                    .collect();
                per.push(vars);
            }
            f_vars.push(per);
        }

        for (di, demand) in demands.iter().enumerate() {
            let profile = DemandProfile::collapse(&ffc_ctx, demand);
            for (ki, &(_, b)) in demand.bandwidth.iter().enumerate() {
                // Guaranteed bandwidth on this pair, capped at the demand.
                let s = p.add_bounded_var(&format!("s[{}][{ki}]", demand.id.0), b);
                p.set_objective(s, 1.0);
                // For every ≤ l failure state: surviving flow covers s.
                for state in &profile.states {
                    let mut terms: Vec<(VarId, f64)> = vec![(s, -1.0)];
                    for (ti, &fv) in f_vars[di][ki].iter().enumerate() {
                        if state.avail[ki][ti] {
                            terms.push((fv, 1.0));
                        }
                    }
                    p.add_constraint(&terms, Relation::Ge, 0.0);
                }
            }
        }

        crate::swan::add_capacity_rows(ctx, demands, &f_vars, &mut p, 1.0);
        let sol = p.solve()?;
        Ok(extract(ctx, demands, &f_vars, &sol))
    }
}

/// The guaranteed (worst-case over ≤ l failures) bandwidth of an allocation
/// for one demand-pair — useful for tests and the motivating-example
/// figure.
pub fn guaranteed_bandwidth(
    ctx: &TeContext,
    alloc: &Allocation,
    demand: &BaDemand,
    pair: usize,
    max_failures: usize,
) -> f64 {
    let scenarios = ScenarioSet::enumerate(ctx.topo, max_failures);
    scenarios
        .iter()
        .map(|z| {
            alloc
                .flows_of(demand.id)
                .filter(|(t, _)| t.pair == pair)
                .filter(|(t, _)| {
                    ctx.tunnels
                        .path(TunnelId {
                            pair: t.pair,
                            tunnel: t.tunnel,
                        })
                        .available_under(ctx.topo, z)
                })
                .map(|(_, f)| f)
                .sum::<f64>()
        })
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_net::{topologies, ScenarioSet};
    use bate_routing::{RoutingScheme, TunnelSet};

    fn ctx_toy() -> (bate_net::Topology, TunnelSet, ScenarioSet) {
        let topo = topologies::toy4();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        (topo, tunnels, scenarios)
    }

    #[test]
    fn ffc_splits_conservatively_like_fig2b() {
        let (topo, tunnels, scenarios) = ctx_toy();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        // Fig. 2: user1 6 Gbps, user2 12 Gbps. FFC(1) can guarantee at most
        // 10 Gbps total (one path's worth) and splits across both paths.
        let demands = vec![
            BaDemand::single(1, pair, 6000.0, 0.99),
            BaDemand::single(2, pair, 12_000.0, 0.90),
        ];
        let alloc = Ffc::new(1).allocate(&ctx, &demands).unwrap();
        let total_guaranteed: f64 = demands
            .iter()
            .map(|d| guaranteed_bandwidth(&ctx, &alloc, d, pair, 1))
            .sum();
        assert!(
            (total_guaranteed - 10_000.0).abs() < 1.0,
            "FFC(1) guarantees one path's capacity: {total_guaranteed}"
        );
        // Neither demand is fully guaranteed — the Fig. 2(b) failure mode.
        assert!(guaranteed_bandwidth(&ctx, &alloc, &demands[1], pair, 1) < 12_000.0);
        assert!(alloc.respects_capacity(&ctx, 1e-6));
    }

    #[test]
    fn ffc_guarantee_survives_any_single_failure() {
        let (topo, tunnels, scenarios) = ctx_toy();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let d = BaDemand::single(1, pair, 4000.0, 0.99);
        let alloc = Ffc::new(1).allocate(&ctx, std::slice::from_ref(&d)).unwrap();
        let g = guaranteed_bandwidth(&ctx, &alloc, &d, pair, 1);
        assert!(
            (g - 4000.0).abs() < 1.0,
            "4 Gbps fits under protection: {g}"
        );
        // Verify against explicit single-failure scenarios.
        for (gid, _) in topo.groups() {
            let sc = bate_net::Scenario::with_failures(&topo, &[gid]);
            assert!(alloc.delivered(&ctx, d.id, pair, &sc) >= 4000.0 - 1.0);
        }
    }

    #[test]
    fn ffc_zero_failures_degenerates_to_throughput() {
        let (topo, tunnels, scenarios) = ctx_toy();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let d = BaDemand::single(1, pair, 15_000.0, 0.9);
        let alloc = Ffc::new(0).allocate(&ctx, std::slice::from_ref(&d)).unwrap();
        let total: f64 = alloc.flows_of(d.id).map(|(_, f)| f).sum();
        assert!((total - 15_000.0).abs() < 1.0, "{total}");
    }
}
