//! # bate-baselines — the TE schemes BATE is evaluated against (§5)
//!
//! Every baseline implements [`TeAlgorithm`]: given the shared
//! [`bate_core::TeContext`] and the admitted demands, produce a tunnel
//! allocation. None of them understands *per-demand* availability targets —
//! that is exactly the gap BATE fills — but each captures its paper's
//! allocation philosophy:
//!
//! * [`ffc::Ffc`] — Forward Fault Correction (SIGCOMM '14): the allocation
//!   must survive any `l` concurrent link failures; conservative, wastes
//!   bandwidth on unlikely failures (Fig. 2(b)).
//! * [`teavar::Teavar`] — TEAVAR (SIGCOMM '19): minimizes the β-CVaR of
//!   bandwidth loss over probabilistic scenarios; one global β for all
//!   users (Fig. 2(c)).
//! * [`swan::Swan`] — SWAN (SIGCOMM '13): maximize total throughput (§5.2
//!   "we let SWAN maximize the total throughput of all users").
//! * [`smore::Smore`] — SMORE (NSDI '18): load-balanced rate adaptation —
//!   maximize throughput while minimizing the worst link utilization.
//! * [`b4::B4`] — B4 (SIGCOMM '13): max-min fair progressive filling.

pub mod b4;
pub mod ffc;
pub mod smore;
pub mod swan;
pub mod teavar;
pub mod traits;

pub use b4::B4;
pub use ffc::Ffc;
pub use smore::Smore;
pub use swan::Swan;
pub use teavar::Teavar;
pub use traits::TeAlgorithm;

/// All five baselines with the paper's evaluation settings: FFC with
/// `l = 1` (§5.2 "at most one link failure in FFC") and TEAVAR at
/// β = 99.9 % ("the maximum value in the user demands").
pub fn paper_baselines() -> Vec<Box<dyn TeAlgorithm>> {
    vec![
        Box::new(Teavar::new(0.999)),
        Box::new(Swan::new()),
        Box::new(Smore::new()),
        Box::new(B4::new()),
        Box::new(Ffc::new(1)),
    ]
}
