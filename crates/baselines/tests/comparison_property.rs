//! Cross-algorithm property tests: every baseline's allocation respects
//! structural invariants on random demand sets.

use bate_baselines::{paper_baselines, traits::Bate, TeAlgorithm};
use bate_core::{BaDemand, DemandId, TeContext};
use bate_net::{topologies, Scenario, ScenarioSet};
use bate_routing::{RoutingScheme, TunnelSet};
use proptest::prelude::*;

fn demand_strategy(num_pairs: usize, max: usize) -> impl Strategy<Value = Vec<BaDemand>> {
    prop::collection::vec(
        (
            0usize..num_pairs,
            20.0f64..500.0,
            prop::sample::select(vec![0.0, 0.9, 0.95, 0.99, 0.999]),
        ),
        1..=max,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (pair, bw, beta))| BaDemand::single(i as u64 + 1, pair % 30, bw, beta))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Invariants every TE algorithm must uphold: capacity feasibility,
    /// no over-allocation beyond demand for the capped algorithms, and
    /// full delivery in the no-failure scenario whenever the demand set is
    /// servable.
    #[test]
    fn baseline_invariants(demands in demand_strategy(30, 5)) {
        let topo = topologies::testbed6();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
        let scenarios = ScenarioSet::enumerate(&topo, 1);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let all_up = Scenario::all_up(&topo);

        for algo in paper_baselines() {
            let Ok(alloc) = algo.allocate(&ctx, &demands) else {
                prop_assert!(false, "{} must be best-effort", algo.name());
                return Ok(());
            };
            prop_assert!(
                alloc.respects_capacity(&ctx, 1e-4),
                "{} violated capacity",
                algo.name()
            );
            // Demand-capped algorithms never deliver more than demanded.
            if matches!(algo.name(), "SWAN" | "SMORE" | "TEAVAR") {
                for d in &demands {
                    for &(pair, b) in &d.bandwidth {
                        let delivered = alloc.delivered(&ctx, d.id, pair, &all_up);
                        prop_assert!(
                            delivered <= b + 1e-6,
                            "{} over-delivered {delivered} > {b}",
                            algo.name()
                        );
                    }
                }
            }
        }
    }

    /// BATE never admits-and-schedules a set it cannot guarantee: when the
    /// hardened scheduler succeeds on a conjecture-approved set, every
    /// demand's hard target holds.
    #[test]
    fn bate_guarantees_conjectured_sets(demands in demand_strategy(30, 4)) {
        let topo = topologies::testbed6();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
        let scenarios = ScenarioSet::enumerate(&topo, 3);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        if bate_core::admission::greedy::conjecture(&ctx, &demands) {
            if let Ok(alloc) = Bate.allocate(&ctx, &demands) {
                for d in &demands {
                    prop_assert!(
                        alloc.meets_target(&ctx, d),
                        "hard target missed for {:?}",
                        d.id
                    );
                }
            }
        }
    }

    /// Determinism: the same inputs produce the same allocation for every
    /// algorithm (no hidden randomness).
    #[test]
    fn allocations_are_deterministic(demands in demand_strategy(30, 3)) {
        let topo = topologies::testbed6();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
        let scenarios = ScenarioSet::enumerate(&topo, 1);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        for algo in paper_baselines() {
            let a = algo.allocate(&ctx, &demands);
            let b = algo.allocate(&ctx, &demands);
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    for d in &demands {
                        let fx: Vec<_> = x.flows_of(d.id).collect();
                        let fy: Vec<_> = y.flows_of(d.id).collect();
                        prop_assert_eq!(fx, fy, "{} nondeterministic", algo.name());
                    }
                }
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "{} flip-flopped", algo.name()),
            }
        }
    }
}

// Keep DemandId imported for readability of failure messages.
#[allow(dead_code)]
fn _unused(id: DemandId) -> u64 {
    id.0
}
