//! Differential goldens for the five baseline TE algorithms (DESIGN.md
//! §5d satellite): FFC, TEAVAR, SWAN, SMORE and B4 are pinned on toy4
//! (pruning depth 2) and testbed6 (depth 1) — total allocated
//! bandwidth as the objective, plus the per-demand BA verdict
//! (`meets_target`, the admission-relevant answer). A behavior change
//! in any baseline shows up as a diff against this table, separating
//! deliberate algorithm edits from accidental regressions.
//!
//! Regenerate the table after an intentional change with
//! `cargo test -p bate-baselines --test golden -- --ignored print_golden_table --nocapture`.

use bate_baselines::paper_baselines;
use bate_core::{BaDemand, TeContext};
use bate_net::{topologies, ScenarioSet, Topology};
use bate_routing::{RoutingScheme, TunnelSet};

/// Objectives are pinned to 1e-6 relative: looser than bit-equality (so
/// benign float reassociation survives) but far tighter than any real
/// behavior change.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()))
}

struct Fixture {
    name: &'static str,
    topo: Topology,
    tunnels: TunnelSet,
    scenarios: ScenarioSet,
    demands: Vec<BaDemand>,
}

fn fixtures() -> Vec<Fixture> {
    let mut out = Vec::new();

    let topo = topologies::toy4();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
    let scenarios = ScenarioSet::enumerate(&topo, 2);
    let n = |s: &str| topo.find_node(s).unwrap();
    let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
    let demands = vec![
        BaDemand::single(1, pair, 6000.0, 0.99),
        BaDemand::single(2, pair, 12_000.0, 0.90),
    ];
    out.push(Fixture {
        name: "toy4",
        topo,
        tunnels,
        scenarios,
        demands,
    });

    let topo = topologies::testbed6();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(3));
    let scenarios = ScenarioSet::enumerate(&topo, 1);
    let n = |s: &str| topo.find_node(s).unwrap();
    let p13 = tunnels.pair_index(n("DC1"), n("DC3")).unwrap();
    let p12 = tunnels.pair_index(n("DC1"), n("DC2")).unwrap();
    let demands = vec![
        BaDemand::single(1, p13, 500.0, 0.99),
        BaDemand::single(2, p13, 400.0, 0.95),
        BaDemand::single(3, p12, 300.0, 0.99),
    ];
    out.push(Fixture {
        name: "testbed6",
        topo,
        tunnels,
        scenarios,
        demands,
    });

    out
}

/// `(fixture, algorithm, total allocated, per-demand meets_target)`.
/// Values produced by `print_golden_table` on the seed implementation.
const GOLDEN: &[(&str, &str, f64, &[bool])] = &[
    ("toy4", "TEAVAR", 18000.0, &[false, true]),
    ("toy4", "SWAN", 18000.0, &[true, true]),
    ("toy4", "SMORE", 18000.0, &[false, true]),
    ("toy4", "B4", 17999.99999999999, &[false, true]),
    ("toy4", "FFC", 20000.0, &[true, false]),
    ("testbed6", "TEAVAR", 1200.0, &[true, true, true]),
    ("testbed6", "SWAN", 1200.0, &[true, true, true]),
    ("testbed6", "SMORE", 1200.0, &[true, true, true]),
    ("testbed6", "B4", 1199.9999999999993, &[true, true, true]),
    ("testbed6", "FFC", 2150.0, &[true, true, true]),
];

#[test]
fn baselines_match_pinned_goldens() {
    assert!(!GOLDEN.is_empty(), "golden table must be populated");
    let fixes = fixtures();
    let mut checked = 0;
    for fix in &fixes {
        let ctx = TeContext::new(&fix.topo, &fix.tunnels, &fix.scenarios);
        for algo in paper_baselines() {
            let row = GOLDEN
                .iter()
                .find(|&&(f, a, _, _)| f == fix.name && a == algo.name())
                .unwrap_or_else(|| panic!("no golden row for {}/{}", fix.name, algo.name()));
            let alloc = algo.allocate(&ctx, &fix.demands).unwrap();
            assert!(
                alloc.respects_capacity(&ctx, 1e-6),
                "{}/{}: capacity violated",
                fix.name,
                algo.name()
            );
            assert!(
                close(alloc.total_allocated(), row.2),
                "{}/{}: total allocated {} vs pinned {}",
                fix.name,
                algo.name(),
                alloc.total_allocated(),
                row.2
            );
            let verdicts: Vec<bool> = fix
                .demands
                .iter()
                .map(|d| alloc.meets_target(&ctx, d))
                .collect();
            assert_eq!(
                verdicts,
                row.3.to_vec(),
                "{}/{}: BA verdicts changed",
                fix.name,
                algo.name()
            );
            checked += 1;
        }
    }
    // All five baselines on both fixtures, no silent skips.
    assert_eq!(checked, 10, "expected 5 baselines x 2 fixtures");
}

/// Regeneration helper: prints the `GOLDEN` rows for the current
/// implementation. Ignored in normal runs.
#[test]
#[ignore = "golden regeneration helper"]
fn print_golden_table() {
    for fix in fixtures() {
        let ctx = TeContext::new(&fix.topo, &fix.tunnels, &fix.scenarios);
        for algo in paper_baselines() {
            let alloc = algo.allocate(&ctx, &fix.demands).unwrap();
            let verdicts: Vec<String> = fix
                .demands
                .iter()
                .map(|d| alloc.meets_target(&ctx, d).to_string())
                .collect();
            println!(
                "    (\"{}\", \"{}\", {:?}, &[{}]),",
                fix.name,
                algo.name(),
                alloc.total_allocated(),
                verdicts.join(", ")
            );
        }
    }
}
