//! Microbenchmarks for the LP kernels: the original dense tableau kernel
//! (`bate_lp::dense_reference`) vs the sparse-aware pivot kernel
//! (`bate_lp::simplex`) on three scheduling-LP sizes, plus a
//! branch-and-bound admission instance solved end to end.
//!
//! Custom harness (no criterion): the driver needs machine-readable
//! output, so `--emit-json` writes `BENCH_lp.json` at the repository root
//! with per-instance wall-clock numbers and dense/sparse speedups.
//!
//! Run with:
//!
//! ```text
//! cargo bench -p bate-bench --bench lp -- --emit-json
//! ```

use bate_core::incremental::{DemandDelta, IncrementalScheduler};
use bate_core::scheduling::{self, SolveMode, ROWGEN_SEED_SINGLES};
use bate_core::{BaDemand, DemandId, TeContext};
use bate_sim::churn;
use bate_lp::dense_reference::solve_relaxation_dense;
use bate_lp::simplex::{solve_relaxation, solve_with, Workspace};
use bate_lp::{milp, Problem, Relation, Sense};
use bate_net::{topologies, traffic, ScenarioSet};
use bate_obs::{NoopSubscriber, Registry, SystemClock};
use bate_routing::{RoutingScheme, TunnelSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Build a scheduling LP with the multi-demand structure of the paper's
/// Eq. 1–7 (post scenario collapsing): each of `demands` demands owns
/// `k` tunnel-flow variables and `states` bounded delivered-fraction
/// variables; its delivery, coupling, and availability rows touch only its
/// own variables, and demands couple solely through shared link-capacity
/// rows. That block structure — each row holds a handful of nonzeros out
/// of hundreds of columns — is what the real `schedule()` LPs look like
/// and what the sparse kernel targets.
fn scheduling_instance(seed: u64, demands: usize, states: usize, links: usize) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Problem::new(Sense::Minimize);
    let k = 4; // tunnels per demand (the paper's KSP-4)

    let mut link_terms: Vec<Vec<(bate_lp::VarId, f64)>> = vec![Vec::new(); links];
    for d in 0..demands {
        let demand = rng.gen_range(5.0..20.0);
        let f: Vec<_> = (0..k)
            .map(|t| {
                let v = p.add_var(&format!("f{d}_{t}"));
                p.set_objective(v, rng.gen_range(1.0..3.0));
                // Each tunnel crosses ~3 shared links.
                for _ in 0..3 {
                    link_terms[rng.gen_range(0..links)].push((v, 1.0));
                }
                v
            })
            .collect();
        p.add_constraint(
            &f.iter()
                .map(|&v| (v, rng.gen_range(0.9..1.1)))
                .collect::<Vec<_>>(),
            Relation::Ge,
            demand,
        );

        // Per-state delivered-fraction coupling plus the availability floor;
        // every row touches only this demand's tunnels.
        let mut avail_terms = Vec::with_capacity(states);
        let mut prob_left = 1.0f64;
        for s in 0..states {
            let b = p.add_bounded_var(&format!("B{d}_{s}"), 1.0);
            let mut terms = vec![(b, demand)];
            let mut any = false;
            for &fv in &f {
                if rng.gen_bool(0.7) {
                    let eff: f64 = rng.gen_range(0.8..1.2);
                    terms.push((fv, -eff));
                    any = true;
                }
            }
            if !any {
                terms.push((f[0], -1.0));
            }
            p.add_constraint(&terms, Relation::Le, 0.0);
            let ps = if s + 1 == states {
                prob_left
            } else {
                let ps = prob_left * rng.gen_range(0.3..0.7);
                prob_left -= ps;
                ps
            };
            avail_terms.push((b, ps));
        }
        p.add_constraint(&avail_terms, Relation::Ge, rng.gen_range(0.6..0.9));
    }

    for terms in link_terms {
        if !terms.is_empty() {
            p.add_constraint(&terms, Relation::Le, rng.gen_range(200.0..600.0));
        }
    }
    p
}

/// Admission-shaped MILP: maximize the weight of admitted demands (binary
/// accept/reject) under shared link-capacity rows — the optimal-admission
/// model behind Fig. 7(a)/12, sized so branch-and-bound explores a
/// non-trivial tree.
fn bnb_instance(seed: u64, demands: usize, links: usize) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Problem::new(Sense::Maximize);
    let x: Vec<_> = (0..demands)
        .map(|d| {
            let v = p.add_binary_var(&format!("x{d}"));
            p.set_objective(v, rng.gen_range(0.5..5.0));
            v
        })
        .collect();
    for l in 0..links {
        let mut terms = Vec::new();
        for &xv in &x {
            if rng.gen_bool(0.5) {
                terms.push((xv, rng.gen_range(0.5..4.0)));
            }
        }
        if terms.is_empty() {
            terms.push((x[l % demands], 1.0));
        }
        p.add_constraint(&terms, Relation::Le, rng.gen_range(4.0..10.0));
    }
    p
}

/// Multi-pair gravity demands for the row-generation bench: the top
/// `num_demands` source sites by gravity volume each become one BA demand
/// spanning that site's `pairs_per` heaviest destinations. Multi-pair
/// demands are what make the *full* formulation expensive — a demand's
/// collapsed profile distinguishes availability patterns across all of its
/// tunnels jointly, so spanning 6 pairs yields hundreds of states (and
/// `states x pairs` qualification rows) where a single-pair demand caps
/// out at 2^4.
fn rowgen_demands(
    topo: &bate_net::Topology,
    tunnels: &TunnelSet,
    num_demands: usize,
    pairs_per: usize,
    mean_total: f64,
    seed: u64,
    betas: &[f64],
) -> Vec<BaDemand> {
    let matrix = &traffic::generate_matrices(topo, 1, mean_total, seed)[0];
    let mut by_src: Vec<Vec<(usize, f64)>> = vec![Vec::new(); topo.num_nodes()];
    for (s, d, v) in matrix.entries() {
        if let Some(pair) = tunnels.pair_index(s, d) {
            if !tunnels.tunnels(pair).is_empty() {
                by_src[s.0].push((pair, v));
            }
        }
    }
    let mut sources: Vec<(usize, f64)> = by_src
        .iter()
        .enumerate()
        .map(|(s, e)| (s, e.iter().map(|&(_, v)| v).sum::<f64>()))
        .collect();
    sources.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    sources
        .iter()
        .take(num_demands)
        .enumerate()
        .map(|(i, &(s, _))| {
            let mut pairs = by_src[s].clone();
            pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            pairs.truncate(pairs_per);
            BaDemand {
                id: DemandId(i as u64 + 1),
                bandwidth: pairs,
                beta: betas[i % betas.len()],
                price: 0.0,
                refund_ratio: 0.0,
            }
        })
        .collect()
}

/// Best-of-N wall-clock of `f`, with one untimed warm-up run. Minimum (not
/// mean) because scheduler noise only ever adds time.
fn best_of<R>(n: usize, mut f: impl FnMut() -> R) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..n {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

struct BenchRow {
    name: &'static str,
    vars: usize,
    rows: usize,
    dense_secs: Option<f64>,
    sparse_secs: f64,
}

impl BenchRow {
    fn speedup(&self) -> Option<f64> {
        self.dense_secs.map(|d| d / self.sparse_secs)
    }
}

fn main() {
    let emit_json = std::env::args().any(|a| a == "--emit-json");
    let mut out = Vec::new();

    // (name, demands, states per demand, links, timing reps): small sits
    // below the partial-pricing gate (cols <= 256, pure Dantzig either
    // way), large is deep inside candidate-list territory.
    let sizes: [(&'static str, usize, usize, usize, usize); 3] = [
        ("scheduling_small", 4, 6, 12, 40),
        ("scheduling_medium", 12, 16, 24, 10),
        ("scheduling_large", 36, 40, 64, 3),
    ];
    for (name, demands, states, links, reps) in sizes {
        let p = scheduling_instance(7, demands, states, links);
        let dense = best_of(reps, || solve_relaxation_dense(&p, &[]).unwrap());
        // The sparse kernel is benchmarked the way schedule() and
        // branch-and-bound call it: a long-lived workspace with the warm
        // basis cleared, so every rep is a full cold solve (phase 1 +
        // phase 2) but buffer reuse lets the sparse-aware rebuild skip
        // the matrix-sized allocation + memset.
        let mut ws = Workspace::new();
        let sparse = best_of(reps, || {
            ws.clear_warm();
            solve_with(&p, &[], &mut ws).unwrap()
        });
        let d_obj = solve_relaxation_dense(&p, &[]).unwrap().objective;
        let s_obj = solve_relaxation(&p, &[]).unwrap().objective;
        assert!(
            (d_obj - s_obj).abs() < 1e-6 * (1.0 + d_obj.abs()),
            "{name}: kernels disagree: dense {d_obj} vs sparse {s_obj}"
        );
        out.push(BenchRow {
            name,
            vars: p.num_vars(),
            rows: p.num_constraints(),
            dense_secs: Some(dense),
            sparse_secs: sparse,
        });
    }

    // Branch-and-bound end to end (sparse kernel with warm starts; the
    // dense kernel has no B&B driver, so no dense column here).
    let p = bnb_instance(11, 24, 10);
    let cfg = milp::BnbConfig::default();
    let sparse = best_of(3, || milp::solve(&p, cfg).unwrap());
    out.push(BenchRow {
        name: "bnb_admission",
        vars: p.num_vars(),
        rows: p.num_constraints(),
        dense_secs: None,
        sparse_secs: sparse,
    });

    // Full formulation vs row generation on a real >= 1k-scenario
    // instance: ATT (25 sites, 56 physical links) pruned at y = 2 gives
    // 1 + 56 + 1540 = 1597 scenarios. Multi-pair gravity demands blow the
    // full formulation up to thousands of qualification rows; the rowgen
    // master seeds only the all-up + top-single states and lets the
    // separation oracle pull in the handful of binding rows. Both paths
    // must land on the same objective; the ISSUE acceptance bar is a
    // >= 3x wall-clock win for rowgen.
    let topo = topologies::att();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
    let scenarios = ScenarioSet::enumerate(&topo, 2);
    let num_scenarios = scenarios.scenarios.len();
    let ctx = TeContext::new(&topo, &tunnels, &scenarios);
    // 6 demands x 6 pairs at betas {0.9, 0.95}: ~11.5k qualification rows
    // in the full formulation, a few-second full solve, and an instance
    // comfortably clear of the simplex wall-clock guard on both paths
    // (higher betas push the full solve into guard territory, which makes
    // the timing flaky rather than the comparison harder).
    let demands = rowgen_demands(&topo, &tunnels, 6, 6, 10_000.0, 7, &[0.9, 0.95]);
    let rowgen_mode = SolveMode::RowGen {
        seed_singles: ROWGEN_SEED_SINGLES,
    };

    let full_secs = best_of(2, || {
        scheduling::schedule_mode(&ctx, &demands, SolveMode::Full).unwrap()
    });
    let rowgen_secs = best_of(2, || {
        scheduling::schedule_mode(&ctx, &demands, rowgen_mode).unwrap()
    });
    let res_full = scheduling::schedule_mode(&ctx, &demands, SolveMode::Full).unwrap();
    let res_rg = scheduling::schedule_mode(&ctx, &demands, rowgen_mode).unwrap();
    assert!(
        (res_full.total_bandwidth - res_rg.total_bandwidth).abs()
            <= 1e-9 * (1.0 + res_full.total_bandwidth.abs()),
        "scheduling_rowgen: objectives diverged: {} (full) vs {} (rowgen)",
        res_full.total_bandwidth,
        res_rg.total_bandwidth
    );
    let rg = res_rg.rowgen.expect("rowgen path must report RowGenStats");
    let rowgen_speedup = full_secs / rowgen_secs;
    println!(
        "scheduling_rowgen    {num_scenarios} scenarios  full {:>9.3} ms ({} rows)  rowgen {:>9.3} ms ({} rows, {} rounds)  speedup {rowgen_speedup:>5.2}x",
        full_secs * 1e3,
        rg.full_rows,
        rowgen_secs * 1e3,
        rg.master_rows,
        rg.rounds,
    );
    assert!(
        rowgen_speedup >= 3.0,
        "scheduling_rowgen: speedup {rowgen_speedup:.2}x below the 3x acceptance bar"
    );

    // Incremental TE under demand churn (DESIGN.md §5e): a steady pool of
    // single-pair demands on the same ATT y = 2 instance, churned at the
    // paper's 1-5% regime. Every round the cold baseline re-runs the full
    // row-generation schedule from scratch on the round's demand set; the
    // warm path repairs the saved basis through the delta (priced-in
    // columns for adds, dual-simplex repair for removes/resizes) and
    // re-separates. Both must agree on the objective each round; the
    // ISSUE acceptance bar is a >= 10x wall-clock win for warm re-solves.
    let live_pairs: Vec<usize> = (0..tunnels.num_pairs())
        .filter(|&p| tunnels.tunnels(p).len() >= 2)
        .collect();
    let churn_cfg = churn::ChurnConfig::steady(live_pairs, 48, 8, 11);
    let workload = churn::generate(&churn_cfg);
    // Like the kernel benches above, take best-of-N minimums of the
    // round totals on both sides — single runs are too noisy to gate on.
    let mut warm_secs = f64::INFINITY;
    let mut cold_secs = f64::INFINITY;
    let mut churn_stats = Default::default();
    let mut pool_len = 0;
    for _rep in 0..3 {
        let mut sched = IncrementalScheduler::new(&ctx);
        let fill: Vec<DemandDelta> = workload
            .initial
            .iter()
            .map(|d| DemandDelta::Add(d.clone()))
            .collect();
        sched.apply(&ctx, &fill).unwrap();
        let mut pool: Vec<BaDemand> = workload.initial.clone();
        let mut warm_total = 0.0f64;
        let mut cold_total = 0.0f64;
        for batch in &workload.rounds {
            for delta in batch {
                match delta {
                    DemandDelta::Add(d) => pool.push(d.clone()),
                    DemandDelta::Remove(id) => pool.retain(|d| d.id != *id),
                    DemandDelta::Resize { id, factor } => {
                        for d in pool.iter_mut().filter(|d| d.id == *id) {
                            for (_, b) in &mut d.bandwidth {
                                *b *= factor;
                            }
                            d.price *= factor;
                        }
                    }
                }
            }
            let t = Instant::now();
            let warm_res = sched.apply(&ctx, batch).unwrap();
            warm_total += t.elapsed().as_secs_f64();
            let t = Instant::now();
            let cold_res = scheduling::schedule_mode(&ctx, &pool, rowgen_mode).unwrap();
            cold_total += t.elapsed().as_secs_f64();
            assert!(
                (warm_res.total_bandwidth - cold_res.total_bandwidth).abs()
                    <= 1e-6 * (1.0 + cold_res.total_bandwidth.abs()),
                "churn_warm: objectives diverged: {} (warm) vs {} (cold)",
                warm_res.total_bandwidth,
                cold_res.total_bandwidth
            );
        }
        warm_secs = warm_secs.min(warm_total);
        cold_secs = cold_secs.min(cold_total);
        churn_stats = sched.stats();
        pool_len = pool.len();
    }
    let churn_speedup = cold_secs / warm_secs;
    let churn_rounds = workload.rounds.len();
    println!(
        "churn_warm           {} demands {churn_rounds} rounds  cold {:>9.3} ms  warm {:>9.3} ms  speedup {churn_speedup:>5.2}x  ({} warm rounds, {} dual pivots, {} cert fallbacks)",
        pool_len,
        cold_secs * 1e3,
        warm_secs * 1e3,
        churn_stats.warm_rounds,
        churn_stats.dual_pivots,
        churn_stats.cert_fallbacks,
    );
    assert!(
        churn_speedup >= 10.0,
        "churn_warm: speedup {churn_speedup:.2}x below the 10x acceptance bar"
    );

    // Telemetry overhead on the largest scheduling LP: the bare sparse
    // solve (no active trace, so the in-solver phase attribution is
    // gated off) vs the same solve under an active trace root plus the
    // per-solve telemetry cost the bate-core schedule path pays — one
    // Instant sample, three counter adds + one inc, one histogram
    // observation, and one traced event dispatched through an installed
    // subscriber (Noop, so the dispatch path runs but nothing is
    // written). Under the root, the solver's sampled phase timers and
    // the lp.solve span fire too, so this measures the full tracing-on
    // cost. Acceptance: overhead < 2 %.
    let (name, demands, states, links, _) = sizes[sizes.len() - 1];
    let p = scheduling_instance(7, demands, states, links);
    let overhead_reps = 15;

    bate_obs::trace::install(NoopSubscriber::new(), SystemClock::shared());
    let r = Registry::global();
    let solves = r.counter("bench_overhead_solves_total");
    let iters = r.counter("bench_overhead_iterations_total");
    let pivots = r.counter("bench_overhead_pivots_total");
    let solve_ms = r.histogram("bench_overhead_solve_ms");

    // Interleaved best-of: alternate a bare rep and an instrumented rep so
    // clock-speed drift and cache state hit both sides equally — two
    // back-to-back best-of loops would attribute machine drift (which on
    // this instance exceeds the telemetry cost by orders of magnitude) to
    // whichever side ran second.
    let mut ws = Workspace::new();
    let mut base_secs = f64::INFINITY;
    let mut instrumented_secs = f64::INFINITY;
    ws.clear_warm();
    solve_with(&p, &[], &mut ws).unwrap(); // warm-up
    for rep in 0..overhead_reps {
        let t = Instant::now();
        ws.clear_warm();
        std::hint::black_box(solve_with(&p, &[], &mut ws).unwrap());
        base_secs = base_secs.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        let _root = bate_obs::context::root("bench-overhead", rep as u64);
        let t0 = Instant::now();
        ws.clear_warm();
        let sol = solve_with(&p, &[], &mut ws).unwrap();
        solves.inc();
        iters.add(sol.stats.iterations());
        pivots.add(sol.stats.pivots);
        solve_ms.observe_ms(t0.elapsed());
        bate_obs::info!(
            "bench.solve",
            iterations = sol.stats.iterations(),
            pivots = sol.stats.pivots,
        );
        std::hint::black_box(sol);
        drop(_root);
        instrumented_secs = instrumented_secs.min(t.elapsed().as_secs_f64());
    }
    bate_obs::trace::uninstall();
    let overhead_pct = (instrumented_secs / base_secs - 1.0) * 100.0;
    println!(
        "telemetry_overhead   {name}: base {:>9.3} ms  instrumented {:>9.3} ms  overhead {overhead_pct:+.3}%",
        base_secs * 1e3,
        instrumented_secs * 1e3,
    );

    for r in &out {
        match (r.dense_secs, r.speedup()) {
            (Some(d), Some(s)) => println!(
                "{:<20} {:>4} vars {:>4} rows  dense {:>9.3} ms  sparse {:>9.3} ms  speedup {:>5.2}x",
                r.name,
                r.vars,
                r.rows,
                d * 1e3,
                r.sparse_secs * 1e3,
                s
            ),
            _ => println!(
                "{:<20} {:>4} vars {:>4} rows  sparse {:>9.3} ms",
                r.name,
                r.vars,
                r.rows,
                r.sparse_secs * 1e3
            ),
        }
    }

    if emit_json {
        let mut json = String::from("{\n  \"benches\": [\n");
        for (i, r) in out.iter().enumerate() {
            // Dense-less rows (the B&B instance has no dense driver) omit
            // the dense fields entirely rather than emitting JSON nulls —
            // downstream tooling reads absence, never null.
            let mut fields = format!(
                "\"name\": \"{}\", \"vars\": {}, \"rows\": {}, \"sparse_secs\": {:.9}",
                r.name, r.vars, r.rows, r.sparse_secs
            );
            if let (Some(d), Some(s)) = (r.dense_secs, r.speedup()) {
                fields.push_str(&format!(", \"dense_secs\": {d:.9}, \"speedup\": {s:.3}"));
            }
            json.push_str(&format!(
                "    {{{fields}}}{}\n",
                if i + 1 == out.len() { "" } else { "," }
            ));
        }
        json.push_str("  ],\n");
        json.push_str(&format!(
            "  \"scheduling_rowgen\": {{\"scenarios\": {num_scenarios}, \"full_secs\": {full_secs:.9}, \"rowgen_secs\": {rowgen_secs:.9}, \"speedup\": {rowgen_speedup:.3}, \"full_rows\": {}, \"master_rows\": {}, \"rounds\": {}, \"rows_added\": {}}},\n",
            rg.full_rows, rg.master_rows, rg.rounds, rg.rows_added
        ));
        json.push_str(&format!(
            "  \"churn_warm\": {{\"demands\": {}, \"rounds\": {churn_rounds}, \"cold_secs\": {cold_secs:.9}, \"warm_secs\": {warm_secs:.9}, \"speedup\": {churn_speedup:.3}, \"warm_rounds\": {}, \"dual_pivots\": {}, \"cert_fallbacks\": {}}},\n",
            pool_len,
            churn_stats.warm_rounds,
            churn_stats.dual_pivots,
            churn_stats.cert_fallbacks
        ));
        json.push_str(&format!(
            "  \"telemetry_overhead\": {{\"name\": \"{name}\", \"base_secs\": {base_secs:.9}, \"instrumented_secs\": {instrumented_secs:.9}, \"overhead_pct\": {overhead_pct:.3}}}\n"
        ));
        json.push_str("}\n");
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lp.json");
        std::fs::write(path, json).expect("write BENCH_lp.json");
        println!("wrote {path}");
    }
}
