//! Offline-routing cost: tunnel computation per scheme per topology
//! (the controller's Offline Routing module, §4).

use bate_net::topologies;
use bate_routing::{RoutingScheme, TunnelSet};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_tunnels(c: &mut Criterion) {
    let mut group = c.benchmark_group("tunnel_computation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for topo in [topologies::testbed6(), topologies::b4(), topologies::ibm()] {
        let name = topo.name().to_string();
        for scheme in [
            RoutingScheme::Ksp(4),
            RoutingScheme::EdgeDisjoint(4),
            RoutingScheme::Oblivious(4),
        ] {
            group.bench_function(BenchmarkId::new(scheme.name(), &name), |b| {
                b.iter(|| TunnelSet::compute(&topo, scheme).total_tunnels())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_tunnels);
criterion_main!(benches);
