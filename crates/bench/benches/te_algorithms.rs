//! Per-round allocation cost of every TE algorithm (BATE + 5 baselines).

use bate_baselines::{paper_baselines, traits::Bate, TeAlgorithm};
use bate_bench::experiments::common::{demand_snapshot, Env};
use bate_core::AvailabilityClass;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_te(c: &mut Criterion) {
    let env = Env::testbed();
    let ctx = env.ctx();
    let targets = AvailabilityClass::simulation_targets();
    let demands = demand_snapshot(&env, 10, (60.0, 250.0), &targets, 9);

    let mut algos: Vec<Box<dyn TeAlgorithm>> = vec![Box::new(Bate)];
    algos.extend(paper_baselines());

    let mut group = c.benchmark_group("te_allocate");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for algo in &algos {
        group.bench_function(BenchmarkId::from_parameter(algo.name()), |b| {
            b.iter(|| algo.allocate(&ctx, &demands))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_te);
criterion_main!(benches);
