//! Failure recovery: greedy (Algorithm 2) vs the exact MILP — the 50×
//! speedup of Fig. 21 — plus backup-plan precomputation (§3.4).

use bate_bench::experiments::common::{demand_snapshot, Env};
use bate_core::recovery::backup::BackupPlan;
use bate_core::recovery::greedy::greedy_recovery;
use bate_core::recovery::milp::optimal_recovery;
use bate_core::AvailabilityClass;
use bate_net::Scenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_recovery(c: &mut Criterion) {
    let env = Env::testbed();
    let ctx = env.ctx();
    let targets = AvailabilityClass::testbed_targets();
    let n = |s: &str| env.topo.find_node(s).unwrap();
    let l4 = env.topo.find_link(n("DC4"), n("DC5")).unwrap();
    let scenario = Scenario::with_failures(&env.topo, &[env.topo.link(l4).group]);

    let mut group = c.benchmark_group("recovery");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for demand_count in [5usize, 10, 16] {
        let demands = demand_snapshot(&env, demand_count, (40.0, 150.0), &targets, 11);
        group.bench_function(BenchmarkId::new("greedy", demand_count), |b| {
            b.iter(|| greedy_recovery(&ctx, &demands, &scenario))
        });
        group.bench_function(BenchmarkId::new("optimal_milp", demand_count), |b| {
            b.iter(|| optimal_recovery(&ctx, &demands, &scenario))
        });
    }

    let demands = demand_snapshot(&env, 8, (40.0, 150.0), &targets, 11);
    group.bench_function("backup_plan_all_single_failures", |b| {
        b.iter(|| BackupPlan::compute(&ctx, &demands))
    });
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
