//! Admission-control latency: the paper's 30× headline (Fig. 12(c)).
//!
//! Benchmarks the three admission strategies deciding one arriving demand
//! against a pool of already-admitted demands.

use bate_bench::experiments::common::{demand_snapshot, Env};
use bate_core::admission::{self, optimal::optimal_feasible};
use bate_core::{Allocation, AvailabilityClass, BaDemand};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn setup() -> (Env, Vec<BaDemand>, Allocation, BaDemand) {
    let env = Env::testbed();
    let ctx = env.ctx();
    let targets = AvailabilityClass::testbed_targets();
    let pool = demand_snapshot(&env, 10, (60.0, 250.0), &targets, 5);
    // Admit the pool through BATE's own pipeline so the state is realistic.
    let mut admitted = Vec::new();
    let mut current = Allocation::new();
    for d in &pool {
        if let admission::AdmissionOutcome::Admitted { allocation, .. } =
            admission::admit(&ctx, &admitted, &current, d)
        {
            for (t, f) in allocation.flows_of(d.id) {
                current.set(d.id, t, f);
            }
            admitted.push(d.clone());
        }
    }
    let newcomer = BaDemand::single(9999, admitted[0].bandwidth[0].0, 120.0, 0.99);
    (env, admitted, current, newcomer)
}

fn bench_admission(c: &mut Criterion) {
    let (env, admitted, current, newcomer) = setup();
    let ctx = env.ctx();
    let mut group = c.benchmark_group("admission");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function(BenchmarkId::new("strategy", "fixed"), |b| {
        b.iter(|| admission::fixed::fixed_admission(&ctx, &current, &newcomer))
    });
    group.bench_function(BenchmarkId::new("strategy", "bate"), |b| {
        b.iter(|| admission::admit(&ctx, &admitted, &current, &newcomer))
    });
    group.bench_function(BenchmarkId::new("strategy", "optimal"), |b| {
        b.iter(|| {
            let mut all = admitted.clone();
            all.push(newcomer.clone());
            optimal_feasible(&ctx, &all).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_admission);
criterion_main!(benches);
