//! Scheduling cost vs pruning depth (Fig. 17) and scenario-enumeration
//! cost, on the four Table-4 topologies.

use bate_bench::experiments::common::{demand_snapshot, Env};
use bate_core::scheduling::schedule;
use bate_core::{AvailabilityClass, TeContext};
use bate_net::{topologies, ScenarioSet};
use bate_routing::RoutingScheme;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_pruned_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling_pruned");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    let targets = AvailabilityClass::simulation_targets();

    for topo in [topologies::b4(), topologies::fiti()] {
        let name = topo.name().to_string();
        let env = Env::new(topo, RoutingScheme::default_ksp4(), 1);
        let demands = demand_snapshot(&env, 8, (60.0, 250.0), &targets, 3);
        for y in 1..=3usize {
            let scenarios = ScenarioSet::enumerate(&env.topo, y);
            let ctx = TeContext::new(&env.topo, &env.tunnels, &scenarios);
            group.bench_function(BenchmarkId::new(&name, y), |b| {
                b.iter(|| schedule(&ctx, &demands))
            });
        }
    }
    group.finish();
}

fn bench_scenario_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_enumeration");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for topo in topologies::simulation_topologies() {
        let name = topo.name().to_string();
        for y in [1usize, 2, 3] {
            group.bench_function(BenchmarkId::new(&name, y), |b| {
                b.iter(|| ScenarioSet::enumerate(&topo, y).len())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pruned_scheduling, bench_scenario_enumeration);
criterion_main!(benches);
