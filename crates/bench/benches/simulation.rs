//! End-to-end simulator throughput: one simulated testbed minute under
//! each recovery policy (supports the Fig. 7/11/20 harnesses).

use bate_baselines::traits::Bate;
use bate_bench::experiments::common::Env;
use bate_sim::workload::{generate, WorkloadConfig};
use bate_sim::{AdmissionStrategy, RecoveryPolicy, SimConfig, Simulation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_sim(c: &mut Criterion) {
    let env = Env::testbed();
    let pairs = env.demand_pairs(6, 77);
    let wl = WorkloadConfig::testbed(pairs, 77);
    let horizon = 5.0 * 60.0;
    let workload = generate(&wl, &env.tunnels, horizon);

    let mut group = c.benchmark_group("simulation_5min");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, recovery) in [
        ("next_round", RecoveryPolicy::NextRound),
        ("greedy", RecoveryPolicy::Greedy),
        ("backup", RecoveryPolicy::Backup),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::testbed(horizon, 77);
                cfg.admission = AdmissionStrategy::Bate;
                cfg.recovery = recovery;
                let te = Bate;
                Simulation {
                    ctx: env.ctx(),
                    te: &te,
                    config: cfg,
                    workload: &workload,
                }
                .run()
                .admitted
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
