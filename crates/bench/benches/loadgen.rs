//! Controller fan-in under a seeded load-generator schedule: a steady +
//! bursty submission mix (bate_sim::loadgen, mgen-style) driven through
//! real sockets against the event-driven controller plane, with batched
//! admission amortizing warm solves across each poll wakeup's arrivals.
//!
//! Custom harness (no criterion): the driver needs machine-readable
//! output, so `--emit-json` writes `BENCH_load.json` at the repository
//! root with sustained throughput and the controller-side admission
//! latency quantiles read from the `bate_admission_*` histograms.
//!
//! Run with:
//!
//! ```text
//! cargo bench -p bate-bench --bench loadgen -- --emit-json
//! ```
//!
//! Scaled-down deterministic runs (scripts/loadcheck.sh) override the
//! schedule: `-- --per-min 30000 --secs 2 --floor 20000`.

use bate_net::topologies;
use bate_obs::Registry;
use bate_routing::RoutingScheme;
use bate_sim::loadgen::{schedule, LoadEvent, LoadProfile};
use bate_system::client::DemandRequest;
use bate_system::{Controller, ControllerConfig, PipelinedClient};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Parse `--key value` numeric overrides from the bench argument list.
fn arg(args: &[String], key: &str, default: f64) -> f64 {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {key} value {v:?}")))
        .unwrap_or(default)
}

/// One pipelined connection plus its reply bookkeeping: how many verdicts
/// are outstanding on the socket and which admitted ids are live (FIFO)
/// so old demands can be withdrawn to bound the controller's pool.
struct Lane {
    client: PipelinedClient,
    queued: usize,
    outstanding: usize,
    live: VecDeque<u64>,
    admitted: u64,
    rejected: u64,
}

impl Lane {
    /// Receive up to `n` verdicts, withdrawing the oldest live demand
    /// whenever more than `cap` of this lane's admissions are live.
    fn drain(&mut self, n: usize, cap: usize) {
        for _ in 0..n.min(self.outstanding) {
            let (id, admitted) = self.client.recv_verdict().expect("verdict");
            self.outstanding -= 1;
            if admitted {
                self.admitted += 1;
                self.live.push_back(id);
            } else {
                self.rejected += 1;
            }
            // Withdraw the oldest live demand once this lane exceeds its
            // cap: mgen-style short-lived flows, keeping the controller's
            // pool (and per-demand conjecture cost) bounded. The
            // withdrawal piggybacks on the next flush; the reply reader
            // skips its WithdrawAck.
            while self.live.len() > cap {
                let old = self.live.pop_front().unwrap();
                self.client.queue_withdraw(old).expect("queue withdraw");
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let emit_json = args.iter().any(|a| a == "--emit-json");
    let per_min = arg(&args, "--per-min", 120_000.0);
    let secs = arg(&args, "--secs", 5.0);
    let seed = arg(&args, "--seed", 7.0) as u64;
    let floor = arg(&args, "--floor", 100_000.0);
    // Live demands per lane before the oldest is withdrawn: keeps the
    // admission pool (and so per-demand conjecture cost) bounded, the way
    // short-lived mgen flows would.
    let cap = arg(&args, "--live-cap", 12.0) as usize;
    let lanes_n = arg(&args, "--lanes", 4.0) as usize;
    // Max submits a lane puts in flight per wave. Without a window, a
    // burst that momentarily outpaces the verdict RTT queues every due
    // event into one giant batch; the admission fold then grows the pool
    // mid-batch until the network saturates, and each rejection pays the
    // conjecture pass over that bloated pool. Bounding the wave keeps
    // the bench measuring sustained throughput instead of collapse.
    let window = arg(&args, "--window", 32.0) as usize;

    let topo = topologies::testbed6();
    let pairs = LoadProfile::all_pairs(&topo);

    // The steady + bursty mix: 60% of the target rate as a constant
    // stream, 40% as a bursty stream (6x flash windows), merged into one
    // schedule. Disjoint id ranges keep the merge collision-free.
    let steady = LoadProfile::steady(per_min * 0.6, pairs.clone(), seed);
    let bursty_mean = per_min * 0.4;
    let bursty_base = bursty_mean
        / LoadProfile::bursty(1.0, pairs.clone(), seed)
            .pattern
            .mean_per_min();
    let bursty = LoadProfile::bursty(bursty_base, pairs, seed ^ 0xB0B5);
    let mut events = schedule(&steady, secs, 1);
    events.extend(schedule(&bursty, secs, 10_000_000));
    events.sort_by(|a, b| a.offset_s.partial_cmp(&b.offset_s).unwrap());
    let total = events.len();
    assert!(total > 0, "empty schedule: raise --per-min or --secs");

    // LOADGEN_DEBUG=1 turns on the controller's structured trace stream
    // plus periodic pacing progress lines — the first thing to reach for
    // when a run stalls or misses its floor.
    let debug = std::env::var("LOADGEN_DEBUG").is_ok();
    if debug {
        bate_obs::trace::install(
            bate_obs::StderrSubscriber::new(bate_obs::Level::Debug),
            bate_obs::SystemClock::shared(),
        );
    }
    let controller = Controller::start(ControllerConfig {
        topo: topologies::testbed6(),
        routing: RoutingScheme::default_ksp4(),
        max_failures: 2,
        schedule_interval: None,
        clock: bate_core::clock::SystemClock::shared(),
        legacy_duplicate_handling: false,
        idle_timeout: Some(Duration::from_secs(30)),
    })
    .expect("controller start");

    let mut lanes: Vec<Lane> = (0..lanes_n.max(1))
        .map(|_| Lane {
            client: PipelinedClient::connect(controller.addr()).expect("connect"),
            queued: 0,
            outstanding: 0,
            live: VecDeque::new(),
            admitted: 0,
            rejected: 0,
        })
        .collect();

    // Pace the schedule out against the wall clock: every tick, queue all
    // due submissions round-robin across lanes, flush each dirty lane in
    // one write (so a burst lands as one controller wakeup per lane), and
    // drain enough verdicts to keep socket buffers bounded.
    let start = Instant::now();
    let mut next = 0usize;
    let mut last_dbg = Instant::now();
    while next < total {
        if debug && last_dbg.elapsed() > Duration::from_millis(300) {
            last_dbg = Instant::now();
            eprintln!(
                "dbg t={:.2}s next={next}/{total} outstanding={:?}",
                start.elapsed().as_secs_f64(),
                lanes.iter().map(|l| l.outstanding).collect::<Vec<_>>()
            );
        }
        let elapsed = start.elapsed().as_secs_f64();
        let mut any = false;
        while next < total && events[next].offset_s <= elapsed {
            let e: &LoadEvent = &events[next];
            let lane_idx = next % lanes.len();
            let lane = &mut lanes[lane_idx];
            if lane.queued >= window {
                // Wave full: drain verdicts before taking more of the
                // backlog (events stay due; the wall clock keeps counting
                // against the achieved rate).
                break;
            }
            lane.client
                .queue_submit(&DemandRequest::new(
                    e.id, &e.src, &e.dst, e.bandwidth, e.beta,
                ))
                .expect("queue submit");
            lane.queued += 1;
            next += 1;
            any = true;
        }
        for lane in &mut lanes {
            if lane.queued > 0 {
                lane.client.flush().expect("flush");
                lane.outstanding += lane.queued;
                lane.queued = 0;
            }
            // Collect the whole wave's verdicts before the next wave, and
            // push the withdrawals they trigger out immediately. Leaving
            // verdicts outstanding leaves their withdraws unissued, and
            // an open loop against a pool-superlinear warm solve
            // diverges: pool grows -> solve slows -> verdict RTT grows ->
            // pool grows. Closing the loop per wave bounds the pool at
            // ~lanes x (cap + one wave).
            lane.drain(usize::MAX, cap);
            lane.client.flush().expect("flush withdraws");
        }
        if !any && next < total {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
    for lane in &mut lanes {
        if lane.queued > 0 {
            lane.client.flush().expect("flush");
            lane.outstanding += lane.queued;
            lane.queued = 0;
        }
        lane.drain(usize::MAX, cap);
    }
    let wall = start.elapsed().as_secs_f64();

    let admitted: u64 = lanes.iter().map(|l| l.admitted).sum();
    let rejected: u64 = lanes.iter().map(|l| l.rejected).sum();
    assert_eq!(admitted + rejected, total as u64);
    let achieved_per_min = total as f64 / wall * 60.0;

    // Controller-side admission latency (frame decode -> verdict queued),
    // one observation per demand, and the batch-size distribution proving
    // the amortization actually engaged.
    let r = Registry::global();
    let lat = r.histogram("bate_admission_latency_us");
    let batch = r.histogram("bate_admission_batch_size");
    let p50_us = lat.quantile(0.50);
    let p99_us = lat.quantile(0.99);
    let batches = r.counter("bate_ctrl_batches_total").get();
    let solves = r.counter("bate_ctrl_batch_warm_solves_total").get();
    let batch_mean = batch.sum() / batch.count().max(1) as f64;

    println!(
        "loadgen  {total} submissions in {wall:.3} s  ({achieved_per_min:.0}/min, target {per_min:.0}/min)  \
         admitted {admitted} rejected {rejected}"
    );
    println!(
        "loadgen  admission latency p50 {p50_us:.0} us  p99 {p99_us:.0} us  \
         batches {batches} (mean size {batch_mean:.1}, max {:.0})  warm solves {solves}",
        batch.max(),
    );

    assert_eq!(
        lat.count(),
        total as u64,
        "every submission must land one admission-latency observation"
    );
    // Batching needs fan-in pressure: waves are closed-loop, so multi-
    // submit batches only form when arrivals outpace the verdict RTT.
    // Smoke-scale runs (a few hundred per second) legitimately see
    // batches of one.
    if per_min >= 12_000.0 {
        assert!(
            batch.max() >= 2.0,
            "batched admission never engaged (max batch size {})",
            batch.max()
        );
    }
    assert!(
        achieved_per_min >= floor,
        "sustained {achieved_per_min:.0} submissions/min is below the {floor:.0}/min floor"
    );

    if emit_json {
        let json = format!(
            "{{\n  \"loadgen\": {{\"submissions\": {total}, \"wall_secs\": {wall:.6}, \
             \"per_min\": {achieved_per_min:.1}, \"target_per_min\": {per_min:.1}, \
             \"admitted\": {admitted}, \"rejected\": {rejected}, \
             \"p50_us\": {p50_us:.3}, \"p99_us\": {p99_us:.3}, \
             \"batches\": {batches}, \"batch_mean\": {batch_mean:.3}, \"batch_max\": {:.1}, \
             \"warm_solves\": {solves}, \"lanes\": {lanes_n}, \"live_cap\": {cap}, \
             \"seed\": {seed}}}\n}}\n",
            batch.max(),
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_load.json");
        std::fs::write(path, json).expect("write BENCH_load.json");
        println!("wrote {path}");
    }
}
