//! Seeded instance-generator fleet for the differential fuzzing campaign
//! (DESIGN.md §5d, §7).
//!
//! Every generator is a pure function of its seed, so the campaign in
//! `crates/bench/tests/fuzz_campaign.rs` is deterministic end to end:
//! a failure reports `family:seed`, and replaying that pair reproduces
//! the instance bit for bit. Families:
//!
//! * [`random_lp`] — unstructured LPs over the full builder surface
//!   (bounded/unbounded vars, all three relations, all senses; may be
//!   infeasible or unbounded — verdicts are differenced too).
//! * [`degenerate_lp`] — balanced transportation models with tied costs
//!   and duplicated rows: massively degenerate optimal faces that stress
//!   Bland's-rule anti-cycling and warm-install repair.
//! * [`ill_conditioned_lp`] — coefficients spanning ~9 orders of
//!   magnitude with near-parallel rows; constructed feasible and bounded
//!   so the objective difference is always checkable.
//! * [`recovery_shaped_lp`] — post-failure reroute shape: coverage `Ge`
//!   rows over surviving tunnels plus link-capacity `Le` rows, the
//!   structure `optimal_recovery` solves.
//! * [`tie_fan_lp`] — the new adversarial family of this PR: fans of
//!   *identical* columns under redundant duplicated rows, so every
//!   pricing step ties and bounded-variable bound flips are forced; the
//!   float kernel's candidate-list pricing and the exact oracle's Bland
//!   rule must still land on the same objective.
//! * [`srlg_scheduling_lp`] — the correlated-failure family of this PR:
//!   real Eq. 4 scheduling LPs built over toy4 with seeded fiber-cut
//!   SRLGs, so the scenario probabilities are *joint* (group-level
//!   Bernoulli events), not per-link independent. Instances straddle
//!   feasible/infeasible as the conduit probability sweeps, exercising
//!   the verdict-agreement path.
//! * [`random_milp`] — knapsack-shaped MILPs with binaries plus an
//!   occasional general-integer variable and side row.
//! * [`srlg_admission_milp`] — oversubscribed Appendix-A admission MILPs
//!   over the same correlated fixtures, forcing rejections whose
//!   accept/reject split the exact oracle must reproduce.
//! * [`stale_batch_mates_gadget`] — the PR-4 branch-and-cut regression
//!   gadget (junk-gadget fan-out, z/r pin, hidden row), exposed here so
//!   the campaign certifies it against the exact oracle.
//!
//! Network-model instances (gravity demands over bate-net topologies,
//! fed to the real scheduling/admission builders across all
//! `SolveMode`s) come from [`net_fixture`] + [`gravity_demands`].
//!
//! ## Seed-corpus policy
//!
//! The `proptest` shim has no `proptest-regressions` persistence, so
//! seeds that ever exposed a bug are checked in at
//! [`REGRESSION_SEEDS`] and replayed by the campaign *before* the
//! random sweep. `FUZZ_BUDGET` scales the per-family case count
//! ([`fuzz_budget`]): tier-1 runs the small default, nightly runs set
//! it high.

use bate_core::{BaDemand, TeContext};
use bate_lp::{Problem, Relation, Sense, VarId};
use bate_net::{topologies, traffic, GroupId, ScenarioSet, SrlgSet, Topology};
use bate_routing::{RoutingScheme, TunnelSet};
use rand::{Rng, SeedableRng, StdRng};

/// `(family, seed)` pairs the campaign replays before any random sweep:
/// seeds that exposed bugs in the past, plus one pinned representative
/// of each correlated family (so the SRLG-shaped models stay covered
/// even under tiny `FUZZ_BUDGET` settings). Append the reported pair
/// when a campaign fails, then fix the bug — the corpus replays every
/// entry first, forever.
pub const REGRESSION_SEEDS: &[(&str, u64)] = &[
    ("srlg_scheduling_lp", 3),
    ("srlg_admission_milp", 1),
];

/// Per-family case budget: `FUZZ_BUDGET` when set, `default` otherwise.
pub fn fuzz_budget(default: usize) -> usize {
    std::env::var("FUZZ_BUDGET")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(default)
}

/// A generated instance, tagged for reproduction.
pub struct FuzzInstance {
    /// `family:seed` tag reported on failure.
    pub name: String,
    pub problem: Problem,
}

/// A named seeded generator: `(family name, constructor)`.
pub type Family = (&'static str, fn(u64) -> FuzzInstance);

/// `Le` rows as `(terms, rhs)` pairs, for driving lazy-oracle solves.
pub type LeRows = Vec<(Vec<(VarId, f64)>, f64)>;

/// The LP generator fleet as `(family name, generator)` pairs.
pub fn lp_families() -> Vec<Family> {
    vec![
        ("random_lp", random_lp),
        ("degenerate_lp", degenerate_lp),
        ("ill_conditioned_lp", ill_conditioned_lp),
        ("recovery_shaped_lp", recovery_shaped_lp),
        ("tie_fan_lp", tie_fan_lp),
        ("srlg_scheduling_lp", srlg_scheduling_lp),
    ]
}

/// The MILP generator fleet.
pub fn milp_families() -> Vec<Family> {
    vec![
        ("random_milp", random_milp),
        ("srlg_admission_milp", srlg_admission_milp),
    ]
}

fn coeff(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0u32..4) {
        0 => rng.gen_range(-4i32..5) as f64,
        1 => rng.gen_range(-8i32..9) as f64 * 0.5,
        2 => rng.gen_range(1i32..5) as f64,
        _ => rng.gen_range(-2.0..2.0),
    }
}

/// Unstructured LPs over the whole builder surface. Roughly half are
/// feasible-and-bounded; the rest exercise the Infeasible/Unbounded
/// verdict paths, which the differential harness compares as verdicts.
pub fn random_lp(seed: u64) -> FuzzInstance {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0001);
    let sense = if rng.gen_bool(0.5) {
        Sense::Maximize
    } else {
        Sense::Minimize
    };
    let mut p = Problem::new(sense);
    let n = rng.gen_range(2usize..=7);
    let vars: Vec<VarId> = (0..n)
        .map(|i| {
            if rng.gen_bool(0.5) {
                p.add_bounded_var(&format!("x{i}"), rng.gen_range(1i32..=10) as f64)
            } else {
                p.add_var(&format!("x{i}"))
            }
        })
        .collect();
    for &v in &vars {
        if rng.gen_bool(0.8) {
            p.set_objective(v, coeff(&mut rng));
        }
    }
    for _ in 0..rng.gen_range(1usize..=2 * n) {
        let k = rng.gen_range(1usize..=n);
        let terms: Vec<(VarId, f64)> = (0..k)
            .map(|_| (vars[rng.gen_range(0usize..n)], coeff(&mut rng)))
            .collect();
        let rel = match rng.gen_range(0u32..3) {
            0 => Relation::Le,
            1 => Relation::Ge,
            _ => Relation::Eq,
        };
        let rhs = rng.gen_range(-2i32..11) as f64;
        p.add_constraint(&terms, rel, rhs);
    }
    FuzzInstance {
        name: format!("random_lp:{seed}"),
        problem: p,
    }
}

/// Balanced transportation with tied unit costs, a duplicated row and a
/// redundant aggregate row — the optimal face is a whole polytope, so
/// the float kernel's pricing and the exact Bland walk traverse wildly
/// different bases and must still agree on the objective.
pub fn degenerate_lp(seed: u64) -> FuzzInstance {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0002);
    let m = rng.gen_range(2usize..=3); // sources
    let n = rng.gen_range(2usize..=3); // sinks
    let mut p = Problem::new(Sense::Minimize);
    // Tied costs: only two distinct values, many ties.
    let x: Vec<Vec<VarId>> = (0..m)
        .map(|i| {
            (0..n)
                .map(|j| {
                    let v = p.add_var(&format!("x{i}{j}"));
                    p.set_objective(v, if rng.gen_bool(0.5) { 1.0 } else { 2.0 });
                    v
                })
                .collect()
        })
        .collect();
    // Balanced integer supplies/demands with deliberate ties.
    let total = rng.gen_range(4i32..=8) * n as i32;
    let supply = total / m as i32;
    let demand = total / n as i32;
    let extra_s = total - supply * m as i32;
    let extra_d = total - demand * n as i32;
    for (i, row) in x.iter().enumerate() {
        let s = supply + if i == 0 { extra_s } else { 0 };
        let terms: Vec<(VarId, f64)> = row.iter().map(|&v| (v, 1.0)).collect();
        p.add_constraint(&terms, Relation::Eq, s as f64);
    }
    for j in 0..n {
        let d = demand + if j == 0 { extra_d } else { 0 };
        let terms: Vec<(VarId, f64)> = x.iter().map(|row| (row[j], 1.0)).collect();
        p.add_constraint(&terms, Relation::Ge, d as f64);
        if j == 0 {
            // Duplicate of the first demand row: a redundant copy whose
            // artificial stays basic at zero through phase 2.
            p.add_constraint(&terms, Relation::Ge, d as f64);
        }
    }
    // Redundant aggregate (implied by the supply rows).
    let all: Vec<(VarId, f64)> = x.iter().flatten().map(|&v| (v, 1.0)).collect();
    p.add_constraint(&all, Relation::Le, total as f64);
    FuzzInstance {
        name: format!("degenerate_lp:{seed}"),
        problem: p,
    }
}

/// Coefficients spanning ~1e-4..1e5 with a near-parallel row pair.
/// Constructed feasible (origin) and bounded (box), so the outcome is
/// always `Optimal` and the objectives must agree within the documented
/// relative tolerance.
pub fn ill_conditioned_lp(seed: u64) -> FuzzInstance {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0003);
    let n = rng.gen_range(3usize..=5);
    let mut p = Problem::new(Sense::Maximize);
    let scales = [1e-4, 1e-2, 1.0, 1e2, 1e5];
    let vars: Vec<VarId> = (0..n)
        .map(|i| {
            let v = p.add_bounded_var(&format!("x{i}"), rng.gen_range(1.0..1e4));
            p.set_objective(v, rng.gen_range(0.1..4.0) * scales[i % scales.len()]);
            v
        })
        .collect();
    let base: Vec<(VarId, f64)> = vars
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, rng.gen_range(0.5..3.0) * scales[(i + 2) % scales.len()]))
        .collect();
    p.add_constraint(&base, Relation::Le, rng.gen_range(1e2..1e6));
    // Near-parallel twin: same row scaled by (1 + 4e-7), slightly
    // different rhs — the pair straddles the float tolerance band.
    let twin: Vec<(VarId, f64)> = base.iter().map(|&(v, c)| (v, c * (1.0 + 4e-7))).collect();
    p.add_constraint(&twin, Relation::Le, rng.gen_range(1e2..1e6));
    for _ in 0..rng.gen_range(1usize..=2) {
        let k = rng.gen_range(1usize..=n);
        let terms: Vec<(VarId, f64)> = (0..k)
            .map(|_| {
                (
                    vars[rng.gen_range(0usize..n)],
                    rng.gen_range(0.1..2.0) * scales[rng.gen_range(0usize..scales.len())],
                )
            })
            .collect();
        p.add_constraint(&terms, Relation::Le, rng.gen_range(1.0..1e5));
    }
    FuzzInstance {
        name: format!("ill_conditioned_lp:{seed}"),
        problem: p,
    }
}

/// Post-failure reroute shape: minimize total flow over surviving
/// tunnels subject to per-demand coverage and link capacities — the
/// structure `bate_core::recovery` solves after masking failed links.
/// Capacities are sized to twice the total demand, so instances are
/// feasible and the optimum equals the coverage total.
pub fn recovery_shaped_lp(seed: u64) -> FuzzInstance {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0004);
    let links = rng.gen_range(3usize..=6);
    let demands = rng.gen_range(1usize..=3);
    let mut p = Problem::new(Sense::Minimize);
    let mut per_link: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); links];
    let mut total_b = 0.0;
    for d in 0..demands {
        let tunnels = rng.gen_range(2usize..=4);
        let b = rng.gen_range(1i32..=9) as f64;
        total_b += b;
        let mut cover = Vec::with_capacity(tunnels);
        for t in 0..tunnels {
            // A surviving tunnel crosses 1–3 random links.
            let v = p.add_var(&format!("f{d}_{t}"));
            p.set_objective(v, 1.0);
            cover.push((v, 1.0));
            for _ in 0..rng.gen_range(1usize..=3) {
                per_link[rng.gen_range(0usize..links)].push((v, 1.0));
            }
        }
        p.add_constraint(&cover, Relation::Ge, b);
    }
    for terms in per_link.iter().filter(|t| !t.is_empty()) {
        p.add_constraint(terms, Relation::Le, total_b * 2.0);
    }
    FuzzInstance {
        name: format!("recovery_shaped_lp:{seed}"),
        problem: p,
    }
}

/// The new adversarial family: fans of identical bounded columns under
/// duplicated covering rows. Every entering choice ties with every
/// other, the ratio test ties against the entering variable's own bound
/// (forcing bound flips), and the duplicated rows keep redundant
/// artificials basic at zero — the paths the warm-install repair and
/// rowgen acceptance logic are most sensitive to.
pub fn tie_fan_lp(seed: u64) -> FuzzInstance {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0005);
    let fan = rng.gen_range(4usize..=8);
    let mut p = Problem::new(Sense::Minimize);
    let vars: Vec<VarId> = (0..fan)
        .map(|i| {
            let v = p.add_bounded_var(&format!("x{i}"), 1.0);
            p.set_objective(v, 1.0); // all costs identical
            v
        })
        .collect();
    let all: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
    // Fractional covering level: optimum sits strictly inside a face
    // where `floor(r)` columns are at their upper bound and one is
    // fractional — which columns is entirely tie-broken. Capped at
    // `fan - 2` so the pinned pair below never renders it infeasible
    // (the family must stay Optimal: the exact certificate needs a
    // solution to verify).
    let r = rng.gen_range(1usize..fan - 1) as f64 + 0.5;
    p.add_constraint(&all, Relation::Ge, r);
    p.add_constraint(&all, Relation::Ge, r); // exact duplicate
    // A weaker implied row and a pinned pair for extra degeneracy.
    p.add_constraint(&all, Relation::Ge, r - 1.0);
    let pinned: Vec<(VarId, f64)> = vars.iter().take(2).map(|&v| (v, 1.0)).collect();
    p.add_constraint(&pinned, Relation::Le, 1.0);
    FuzzInstance {
        name: format!("tie_fan_lp:{seed}"),
        problem: p,
    }
}

/// Knapsack-shaped MILPs: binaries with integer weights/rewards, an
/// occasional general-integer column and side row. Always feasible
/// (the origin), so float branch-and-bound and the exact oracle must
/// agree on the optimum exactly.
pub fn random_milp(seed: u64) -> FuzzInstance {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0006);
    let n = rng.gen_range(3usize..=6);
    let mut p = Problem::new(Sense::Maximize);
    let mut weights = Vec::with_capacity(n + 1);
    for i in 0..n {
        let v = p.add_binary_var(&format!("x{i}"));
        p.set_objective(v, rng.gen_range(1i32..=9) as f64);
        weights.push((v, rng.gen_range(1i32..=9) as f64));
    }
    if rng.gen_bool(0.4) {
        let v = p.add_integer_var("g", rng.gen_range(2i32..=4) as f64);
        p.set_objective(v, rng.gen_range(1i32..=5) as f64);
        weights.push((v, rng.gen_range(1i32..=5) as f64));
    }
    let total: f64 = weights.iter().map(|&(_, w)| w).sum();
    p.add_constraint(&weights, Relation::Le, (total / 2.0).floor().max(1.0));
    if rng.gen_bool(0.5) {
        // Side row: a cardinality cap over a random subset.
        let k = rng.gen_range(1usize..=n);
        let sub: Vec<(VarId, f64)> = weights.iter().take(k).map(|&(v, _)| (v, 1.0)).collect();
        p.add_constraint(&sub, Relation::Le, k.div_ceil(2) as f64);
    }
    FuzzInstance {
        name: format!("random_milp:{seed}"),
        problem: p,
    }
}

/// A seeded correlated fixture: toy4 plus 1–2 random fiber-cut SRLGs
/// (each covering 2–3 fate groups, conduit probability log-uniform in
/// ~1e-3..5e-2), enumerated at depth 2 over the *event* space — so the
/// scenario probabilities are joint, not per-link independent. Kept to
/// toy4 so the exact rational oracle can certify every instance.
pub fn srlg_fixture(rng: &mut StdRng) -> NetFixture {
    let topo = topologies::toy4();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
    let mut srlgs = SrlgSet::new(&topo);
    let cuts = rng.gen_range(1usize..=2);
    for c in 0..cuts {
        let k = rng.gen_range(2usize..=3);
        let mut groups: Vec<GroupId> = Vec::with_capacity(k);
        while groups.len() < k {
            let g = GroupId(rng.gen_range(0usize..topo.num_groups()));
            if !groups.contains(&g) {
                groups.push(g);
            }
        }
        let q = 10f64.powf(rng.gen_range(-3.0..-1.3));
        srlgs.add(&format!("cut{c}"), q, &groups);
    }
    let scenarios = srlgs.enumerate(&topo, 2);
    NetFixture {
        topo,
        tunnels,
        scenarios,
    }
}

/// Real Eq. 4 scheduling LPs over seeded correlated fixtures. Depending
/// on how hard the drawn conduits hit the drawn demands' β-targets, the
/// instance is Optimal or Infeasible — both verdicts are differenced
/// against the exact oracle.
pub fn srlg_scheduling_lp(seed: u64) -> FuzzInstance {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0007);
    let fix = srlg_fixture(&mut rng);
    let mean_total = rng.gen_range(8_000.0..16_000.0);
    let demands = gravity_demands(&fix, 3, mean_total, seed + 300);
    let ctx = TeContext::new(&fix.topo, &fix.tunnels, &fix.scenarios);
    let caps: Vec<f64> = fix.topo.links().map(|(_, l)| l.capacity).collect();
    let problem = bate_core::scheduling::scheduling_lp(&ctx, &demands, &caps)
        .expect("scheduling LP build is infallible for non-empty demand sets");
    FuzzInstance {
        name: format!("srlg_scheduling_lp:{seed}"),
        problem,
    }
}

/// Oversubscribed Appendix-A admission MILPs over the same correlated
/// fixtures: the traffic draw deliberately exceeds toy4's capacity, so
/// the optimal accept/reject split is non-trivial and the float
/// branch-and-bound must reproduce the exact oracle's count.
pub fn srlg_admission_milp(seed: u64) -> FuzzInstance {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0008);
    let fix = srlg_fixture(&mut rng);
    let mean_total = rng.gen_range(25_000.0..45_000.0);
    let demands = gravity_demands(&fix, 3, mean_total, seed + 400);
    let ctx = TeContext::new(&fix.topo, &fix.tunnels, &fix.scenarios);
    let problem = bate_core::admission::optimal::admission_milp(&ctx, &demands, false)
        .expect("admission MILP build is infallible for non-empty demand sets");
    FuzzInstance {
        name: format!("srlg_admission_milp:{seed}"),
        problem,
    }
}

/// The PR-4 branch-and-cut regression gadget (`stale_batch_mates` in
/// `bate-lp`'s MILP tests): `nj` junk gadgets fan the DFS frontier out
/// past the node batch, a z/r gadget pins every relaxation to r = 1,
/// and the hidden row `a + b <= 1` is what the lazy oracle must append
/// before any incumbent is accepted. With the hidden row built in
/// (`with_hidden`), the true optimum is 10; without it, 20 (a = b = 1
/// is the bogus incumbent PR-4's fix rejects). Returns the problem plus
/// the hidden row for driving `solve_lazy` oracles.
pub fn stale_batch_mates_gadget(
    nj: usize,
    with_hidden: bool,
) -> (FuzzInstance, LeRows) {
    let mut p = Problem::new(Sense::Maximize);
    for k in 0..nj {
        let j = p.add_binary_var(&format!("j{k}"));
        let jp = p.add_bounded_var(&format!("jp{k}"), 1.0);
        p.set_objective(jp, 1.0);
        p.add_constraint(&[(jp, 1.0), (j, -1.0)], Relation::Le, 0.0);
        p.add_constraint(&[(jp, 1.0), (j, 1.0)], Relation::Le, 1.0);
    }
    let z = p.add_binary_var("z");
    let r = p.add_bounded_var("r", 1.0);
    let a = p.add_binary_var("a");
    let b = p.add_binary_var("b");
    p.set_objective(r, 15.0);
    p.set_objective(a, 10.0);
    p.set_objective(b, 10.0);
    p.add_constraint(&[(r, 1.0), (z, -2.0)], Relation::Le, 0.0);
    p.add_constraint(&[(r, 1.0), (z, 2.0)], Relation::Le, 2.0);
    p.add_constraint(&[(a, 1.0), (b, 1.0), (r, 1.0)], Relation::Le, 2.0);
    let hidden = vec![(vec![(a, 1.0), (b, 1.0)], 1.0)];
    if with_hidden {
        for (t, rhs) in &hidden {
            p.add_constraint(t, Relation::Le, *rhs);
        }
    }
    let tag = if with_hidden { "full" } else { "lazy" };
    (
        FuzzInstance {
            name: format!("stale_batch_mates[nj={nj},{tag}]"),
            problem: p,
        },
        hidden,
    )
}

/// A topology + tunnels + pruned scenarios bundle for the network-model
/// side of the campaign.
pub struct NetFixture {
    pub topo: Topology,
    pub tunnels: TunnelSet,
    pub scenarios: ScenarioSet,
}

/// The two harness-sized fixtures the campaign solves exactly:
/// toy4 at pruning depth 2 and testbed6 at depth 1.
pub fn net_fixtures() -> Vec<NetFixture> {
    let mut out = Vec::new();
    let topo = topologies::toy4();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
    let scenarios = ScenarioSet::enumerate(&topo, 2);
    out.push(NetFixture {
        topo,
        tunnels,
        scenarios,
    });
    let topo = topologies::testbed6();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
    let scenarios = ScenarioSet::enumerate(&topo, 1);
    out.push(NetFixture {
        topo,
        tunnels,
        scenarios,
    });
    out
}

/// Top-`n` gravity-matrix entries as single-pair BA demands, betas
/// cycling through the availability classes. Deterministic in `seed`
/// (same construction the rowgen goldens pin).
pub fn gravity_demands(fix: &NetFixture, n: usize, mean_total: f64, seed: u64) -> Vec<BaDemand> {
    let matrix = &traffic::generate_matrices(&fix.topo, 1, mean_total, seed)[0];
    let mut entries: Vec<(usize, f64)> = matrix
        .entries()
        .filter_map(|(s, d, v)| fix.tunnels.pair_index(s, d).map(|pair| (pair, v)))
        .filter(|&(pair, _)| !fix.tunnels.tunnels(pair).is_empty())
        .collect();
    entries.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    entries.truncate(n);
    let betas = [0.9, 0.99, 0.95, 0.999];
    entries
        .iter()
        .enumerate()
        .map(|(i, &(pair, v))| BaDemand::single(i as u64 + 1, pair, v, betas[i % betas.len()]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_per_seed() {
        for (name, gen) in lp_families().into_iter().chain(milp_families()) {
            let a = gen(42).problem.to_lp_format();
            let b = gen(42).problem.to_lp_format();
            assert_eq!(a, b, "{name} not deterministic");
            let c = gen(43).problem.to_lp_format();
            assert_ne!(a, c, "{name} ignores its seed");
        }
    }

    #[test]
    fn gadget_optima_are_pinned() {
        let (full, _) = stale_batch_mates_gadget(2, true);
        let sol = full.problem.solve().unwrap();
        assert!((sol.objective - 10.0).abs() < 1e-9, "{}", sol.objective);
        let (lazy, _) = stale_batch_mates_gadget(2, false);
        let sol = lazy.problem.solve().unwrap();
        assert!((sol.objective - 20.0).abs() < 1e-9, "{}", sol.objective);
    }
}
