//! # bate-bench — regenerating every table and figure of the paper
//!
//! Each module under [`experiments`] reproduces one group of evaluation
//! artifacts (§5 + Appendix E). The `figures` binary prints the same
//! rows/series the paper plots; the Criterion benches under `benches/`
//! measure the performance claims (admission speedup, pruning speedup,
//! recovery speedup).
//!
//! Scale note: the paper runs 100-day simulations on a server fleet with
//! Gurobi. The reproduction keeps every *workload generator and parameter
//! sweep* but shrinks horizons/repeats so the full harness finishes in
//! minutes on a laptop; EXPERIMENTS.md records the shape comparison
//! (who wins, by roughly what factor) for every artifact.

pub mod experiments;
pub mod fuzz;

pub use experiments::common;
