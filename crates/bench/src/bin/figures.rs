//! Regenerate the paper's tables and figures as text series.
//!
//! ```text
//! figures [quick|full] [artifact ...]
//! ```
//!
//! Artifacts: `fig2 table3 fig7a fig7b fig7cd fig8 fig9 fig10 fig11 fig12
//! fig13 fig14 fig15 fig16 fig17 fig18 fig19 fig20 fig21 storm`, or `all`
//! (default). `quick` (default) uses shortened horizons/fewer seeds; `full`
//! approaches the paper's sweep sizes and runs for tens of minutes.

use bate_bench::experiments::{
    ablations, admission_exp, failures_exp, motivating, profit, pruning_exp, satisfaction,
    storm_exp,
};
use bate_sim::metrics::ecdf;

struct Effort {
    seeds: Vec<u64>,
    horizon_min: f64,
    max_rate: usize,
    pruning_depth: usize,
    fig10_runs: usize,
    fig11_runs: usize,
}

impl Effort {
    fn quick() -> Effort {
        Effort {
            seeds: vec![1, 2],
            horizon_min: 10.0,
            max_rate: 4,
            pruning_depth: 3,
            fig10_runs: 10,
            fig11_runs: 8,
        }
    }

    fn full() -> Effort {
        Effort {
            seeds: vec![1, 2, 3, 4, 5],
            horizon_min: 100.0,
            max_rate: 6,
            pruning_depth: 4,
            fig10_runs: 100,
            fig11_runs: 30,
        }
    }
}

fn header(name: &str, caption: &str) {
    println!("\n=== {name}: {caption} ===");
}

fn case_studies(cases: &[motivating::CaseStudy]) {
    for case in cases {
        println!("--- {} ---", case.algorithm);
        for (id, path, rate) in &case.rows {
            println!("  demand-{id}  {path:<40} {rate:>9.1} Mbps");
        }
        for (id, target, achieved) in &case.availability {
            let ok = if achieved >= target { "✓" } else { "✗" };
            println!(
                "  demand-{id}  target {:>8.4}%  achieved {:>9.5}%  {ok}",
                target * 100.0,
                achieved * 100.0
            );
        }
    }
}

fn print_cdf(name: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("  {name:<8}  (no samples)");
        return;
    }
    let points = ecdf(samples);
    print!("  {name:<8}");
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
        let idx = ((points.len() as f64 * q).ceil() as usize).clamp(1, points.len()) - 1;
        print!("  p{:<3.0}={:.4}", q * 100.0, points[idx].0);
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut effort = Effort::quick();
    let mut artifacts: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "quick" => effort = Effort::quick(),
            "full" => effort = Effort::full(),
            other => artifacts.push(other.to_string()),
        }
    }
    if artifacts.is_empty() || artifacts.iter().any(|a| a == "all") {
        artifacts = [
            "fig2", "table3", "fig7a", "fig7b", "fig7cd", "fig8", "fig10", "fig11", "fig12",
            "fig13", "fig14", "fig15", "fig16", "fig18", "fig19", "fig20", "storm", "ablations",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    for artifact in &artifacts {
        match artifact.as_str() {
            "fig2" => {
                header("Fig. 2", "motivating example allocations (toy 4-DC)");
                case_studies(&motivating::fig2());
            }
            "table3" | "fig9" => {
                header("Table 3 / Fig. 9", "three parallel demands on the testbed");
                case_studies(&motivating::table3());
            }
            "fig7a" => {
                header("Fig. 7(a)", "rejection ratio vs demand size");
                println!(
                    "  {:>6}  {:>8}  {:>8}  {:>8}",
                    "Mbps", "Fixed", "BATE", "OPT"
                );
                for r in admission_exp::fig7a(effort.horizon_min, &effort.seeds) {
                    println!(
                        "  {:>6.0}  {:>7.1}%  {:>7.1}%  {:>7.1}%",
                        r.demand_mbps,
                        r.fixed * 100.0,
                        r.bate * 100.0,
                        r.optimal * 100.0
                    );
                }
            }
            "fig7b" => {
                header("Fig. 7(b)", "satisfaction by availability target");
                println!(
                    "  {:>8}  {:>8}  {:>14}  {:>11}",
                    "target", "BATE", "TEAVAR-Fixed", "FFC-Fixed"
                );
                for r in satisfaction::fig7b(effort.horizon_min, &effort.seeds) {
                    println!(
                        "  {:>7.2}%  {:>7.1}%  {:>13.1}%  {:>10.1}%",
                        r.target * 100.0,
                        r.bate * 100.0,
                        r.teavar_fixed * 100.0,
                        r.ffc_fixed * 100.0
                    );
                }
            }
            "fig7cd" => {
                header("Fig. 7(c)/(d)", "profit loss / overall profit gain");
                println!(
                    "  {:>8} {:>8}  {:>10}  {:>10}",
                    "admit", "TE", "loss", "gain"
                );
                for c in profit::fig7cd(effort.horizon_min, &effort.seeds) {
                    println!(
                        "  {:>8} {:>8}  {:>9.2}%  {:>9.1}%",
                        c.admission,
                        c.te,
                        c.profit_loss * 100.0,
                        c.profit_gain * 100.0
                    );
                }
            }
            "fig8" => {
                header("Fig. 8", "delivered/demanded bandwidth ratio CDF");
                for (name, samples) in satisfaction::fig8(effort.horizon_min, effort.seeds[0]) {
                    print_cdf(name, &samples);
                }
            }
            "fig10" => {
                header("Fig. 10", "link failure counts");
                for (link, count) in failures_exp::fig10(effort.fig10_runs, 100.0) {
                    println!("  {link:<4} {count:>6}");
                }
            }
            "fig11" => {
                header("Fig. 11", "data loss ratio CDF");
                for (name, losses) in failures_exp::fig11(effort.fig11_runs, 5.0) {
                    print_cdf(name, &losses);
                }
            }
            "fig12" => {
                header("Fig. 12", "admission control in simulation (B4)");
                println!(
                    "  {:>4}  {:>21}  {:>21}  {:>26}  {:>13}",
                    "rate",
                    "rejection F/B/O",
                    "utilization F/B/O",
                    "delay ms F/B/O",
                    "conj.err F/B"
                );
                for r in admission_exp::fig12(effort.max_rate.min(4), effort.horizon_min, 1) {
                    println!(
                        "  {:>4.0}  {:>6.1}%/{:>5.1}%/{:>5.1}%  {:>6.1}%/{:>5.1}%/{:>5.1}%  {:>8.2}/{:>7.2}/{:>7.2}  {:>5.1}%/{:>5.1}%",
                        r.arrivals_per_min,
                        r.rejection[0] * 100.0,
                        r.rejection[1] * 100.0,
                        r.rejection[2] * 100.0,
                        r.utilization[0] * 100.0,
                        r.utilization[1] * 100.0,
                        r.utilization[2] * 100.0,
                        r.delay_ms[0],
                        r.delay_ms[1],
                        r.delay_ms[2],
                        r.conjecture_error[0] * 100.0,
                        r.conjecture_error[1] * 100.0,
                    );
                }
            }
            "fig13" | "fig14" => {
                let fixed = artifact == "fig14";
                header(
                    if fixed { "Fig. 14" } else { "Fig. 13" },
                    if fixed {
                        "satisfaction vs arrival rate (fixed admission)"
                    } else {
                        "satisfaction vs arrival rate"
                    },
                );
                let series = if fixed {
                    satisfaction::fig14(effort.max_rate, &effort.seeds)
                } else {
                    satisfaction::fig13(effort.max_rate, &effort.seeds)
                };
                print!("  {:<6}", "rate");
                for s in &series {
                    print!("{:>9}", s.algorithm);
                }
                println!();
                for i in 0..series[0].points.len() {
                    print!("  {:<6.0}", series[0].points[i].0);
                    for s in &series {
                        print!("{:>8.1}%", s.points[i].1 * 100.0);
                    }
                    println!();
                }
            }
            "fig15" => {
                header("Fig. 15", "profit gain after failures");
                let rows = profit::fig15(&[1, 3, 5], &effort.seeds);
                print!("  {:<6}", "rate");
                for (name, _) in &rows[0].gains {
                    print!("{:>9}", name);
                }
                println!();
                for r in &rows {
                    print!("  {:<6.0}", r.arrivals_per_min);
                    for (_, g) in &r.gains {
                        print!("{:>8.1}%", g * 100.0);
                    }
                    println!();
                }
            }
            "fig16" | "fig17" => {
                header("Fig. 16/17", "pruning: bandwidth loss and scheduling time");
                println!(
                    "  {:>6} {:>3}  {:>12}  {:>10}  {:>9}",
                    "topo", "y", "total bw", "loss", "time"
                );
                for c in pruning_exp::fig16_17(effort.pruning_depth, 17) {
                    println!(
                        "  {:>6} {:>3}  {:>12.1}  {:>9.2}%  {:>8.3}s",
                        c.topology,
                        c.max_failures,
                        c.total_bandwidth,
                        c.bandwidth_loss * 100.0,
                        c.solve_secs
                    );
                }
            }
            "fig18" => {
                header("Fig. 18", "routing-scheme robustness (B4)");
                for s in satisfaction::fig18(effort.max_rate.min(4), &effort.seeds) {
                    print!("  {:<14}", s.algorithm);
                    for (rate, v) in &s.points {
                        print!("  r{rate:.0}={:.1}%", v * 100.0);
                    }
                    println!();
                }
            }
            "fig19" | "fig21" => {
                header(
                    "Fig. 19/21",
                    "greedy recovery: approximation ratio & speedup",
                );
                println!("  {:>4}  {:>12}  {:>10}", "rate", "OPT/greedy", "speedup");
                for r in profit::fig19_21(&[1, 2, 3, 4], &effort.seeds) {
                    println!(
                        "  {:>4.0}  {:>12.3}  {:>9.1}x",
                        r.arrivals_per_min, r.approx_ratio, r.speedup
                    );
                }
            }
            "fig20" => {
                header("Fig. 20", "satisfaction vs link repair time");
                println!(
                    "  {:>6}  {:>8}  {:>8}  {:>8}",
                    "secs", "BATE", "TEAVAR", "FFC"
                );
                for r in failures_exp::fig20(
                    &[0.5, 1.0, 2.0, 3.0, 4.0],
                    effort.horizon_min,
                    &effort.seeds,
                ) {
                    println!(
                        "  {:>6.1}  {:>7.1}%  {:>7.1}%  {:>7.1}%",
                        r.failure_secs,
                        r.bate * 100.0,
                        r.teavar * 100.0,
                        r.ffc * 100.0
                    );
                }
            }
            "storm" => {
                header("Storm", "recovery-storm BA/profit/latency deltas (§6x)");
                println!(
                    "  {:>8} {:>6}  {:>11} {:>11}  {:>9} {:>9}  {:>9} {:>9}",
                    "topo", "groups", "P(joint)", "P(indep)", "retained", "milp gap", "greedy ms", "milp ms"
                );
                for d in storm_exp::storm_deltas(&effort.seeds) {
                    println!(
                        "  {:>8} {:>6}  {:>11.3e} {:>11.3e}  {:>8.1}% {:>8.2}%  {:>9.3} {:>9.3}",
                        d.topology,
                        d.srlg_groups,
                        d.scenario_probability,
                        d.independent_probability,
                        d.greedy_retention * 100.0,
                        d.milp_gap * 100.0,
                        d.greedy_ms,
                        d.milp_ms
                    );
                }
            }
            "ablations" => {
                header("Ablations", "reproduction design choices");
                let ab = ablations::collapse_ablation(2, 17);
                println!(
                    "  scenario collapsing on {}: {} scenarios -> {} states; \
                     {:.3}s vs naive {:.3}s ({} naive vars); objective gap {:.2e}",
                    ab.topology,
                    ab.scenarios,
                    ab.collapsed_states,
                    ab.collapsed_secs,
                    ab.naive_secs,
                    ab.naive_vars,
                    ab.objective_gap
                );
                let h = ablations::harden_ablation(&effort.seeds);
                println!(
                    "  hardening: {} demands, hard violations {} -> {}",
                    h.demands, h.violations_before, h.violations_after
                );
                println!("  congested links by shadow price:");
                for (link, price) in ablations::shadow_prices(17, 5) {
                    println!("    {link:<12} {price:.4}");
                }
            }
            other => eprintln!("unknown artifact: {other}"),
        }
    }
}
