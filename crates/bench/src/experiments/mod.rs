//! Experiment implementations, one module per figure group.

pub mod ablations;
pub mod admission_exp;
pub mod common;
pub mod failures_exp;
pub mod motivating;
pub mod profit;
pub mod pruning_exp;
pub mod satisfaction;
pub mod storm_exp;
