//! E14/E15 (Fig. 16/17): the pruning accuracy/speed trade-off.

use super::common::{demand_snapshot, Env};
use bate_core::scheduling::schedule;
use bate_core::{AvailabilityClass, TeContext};
use bate_net::{topologies, ScenarioSet};
use bate_routing::RoutingScheme;
use std::time::Instant;

/// One (topology, pruning depth) cell.
pub struct PruningCell {
    pub topology: String,
    pub max_failures: usize,
    /// Total allocated bandwidth of the pruned schedule.
    pub total_bandwidth: f64,
    /// Relative extra bandwidth vs the deepest (reference) enumeration:
    /// `(pruned - reference) / reference` — the Fig. 16 "loss".
    pub bandwidth_loss: f64,
    /// Wall-clock scheduling time, seconds (Fig. 17).
    pub solve_secs: f64,
}

/// Sweep `y = 1..=max_depth` over the four Table-4 topologies.
///
/// The paper's reference is the fully unpruned problem (2^|E| scenarios),
/// which only Gurobi-scale hardware can touch even for B4; the reproduction
/// uses the deepest computed depth as the reference, which bounds the same
/// quantity from below (allocations shrink monotonically with depth — see
/// `scheduling::tests::pruned_schedule_never_underestimates`).
pub fn fig16_17(max_depth: usize, seed: u64) -> Vec<PruningCell> {
    let topos = vec![
        topologies::b4(),
        topologies::ibm(),
        topologies::att(),
        topologies::fiti(),
    ];
    let targets = AvailabilityClass::simulation_targets();
    let mut out = Vec::new();
    for topo in topos {
        let name = topo.name().to_string();
        let env = Env::new(topo, RoutingScheme::default_ksp4(), 1);
        let candidates = demand_snapshot(&env, 12, (60.0, 300.0), &targets, seed);
        // The paper schedules *admitted* demands; filter the snapshot
        // through BATE's admission pipeline (at the deepest depth, so the
        // whole sweep is feasible and the loss comparison well-defined).
        let deep = ScenarioSet::enumerate(&env.topo, max_depth);
        let deep_ctx = TeContext::new(&env.topo, &env.tunnels, &deep);
        let mut demands = Vec::new();
        let mut current = bate_core::Allocation::new();
        for d in &candidates {
            if let bate_core::admission::AdmissionOutcome::Admitted { allocation, .. } =
                bate_core::admission::admit(&deep_ctx, &demands, &current, d)
            {
                for (t, f) in allocation.flows_of(d.id) {
                    current.set(d.id, t, f);
                }
                demands.push(d.clone());
            }
        }

        let mut cells: Vec<PruningCell> = Vec::new();
        for y in 1..=max_depth {
            let scenarios = ScenarioSet::enumerate(&env.topo, y);
            let ctx = TeContext::new(&env.topo, &env.tunnels, &scenarios);
            let t0 = Instant::now();
            let result = schedule(&ctx, &demands);
            let solve_secs = t0.elapsed().as_secs_f64();
            let total = match result {
                Ok(r) => r.total_bandwidth,
                // A shallow depth can make a high-β demand infeasible
                // (not enough covered probability); record infinity so the
                // loss is visibly "can't schedule".
                Err(_) => f64::INFINITY,
            };
            cells.push(PruningCell {
                topology: name.clone(),
                max_failures: y,
                total_bandwidth: total,
                bandwidth_loss: 0.0,
                solve_secs,
            });
        }
        // Loss relative to the deepest finite schedule.
        let reference = cells
            .iter()
            .rev()
            .map(|c| c.total_bandwidth)
            .find(|b| b.is_finite())
            .unwrap_or(f64::INFINITY);
        for c in &mut cells {
            c.bandwidth_loss = if c.total_bandwidth.is_finite() && reference.is_finite() {
                (c.total_bandwidth - reference) / reference
            } else {
                f64::INFINITY
            };
        }
        out.extend(cells);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruning_loss_decreases_with_depth() {
        let cells = fig16_17(3, 11);
        // Group by topology and check monotone non-increasing loss.
        for name in ["B4", "IBM", "ATT", "FITI"] {
            let series: Vec<&PruningCell> = cells.iter().filter(|c| c.topology == name).collect();
            assert_eq!(series.len(), 3, "{name}");
            for w in series.windows(2) {
                if w[0].bandwidth_loss.is_finite() && w[1].bandwidth_loss.is_finite() {
                    assert!(
                        w[0].bandwidth_loss >= w[1].bandwidth_loss - 1e-6,
                        "{name}: loss must shrink with depth"
                    );
                }
            }
            // Depth 3 covers enough probability mass for every target.
            assert!(series[2].bandwidth_loss.is_finite(), "{name} at y=3");
            assert!(series[2].bandwidth_loss.abs() < 1e-9);
        }
    }
}
