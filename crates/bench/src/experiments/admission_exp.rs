//! E2 (Fig. 7(a)) and E10 (Fig. 12): admission-control experiments.

use super::common::{mean, Env};
use bate_baselines::traits::Bate;
use bate_net::topologies;
use bate_routing::RoutingScheme;
use bate_sim::workload::{generate, BandwidthModel, WorkloadConfig};
use bate_sim::{AdmissionStrategy, SimConfig, Simulation};

/// Row of Fig. 7(a): rejection ratio per admission strategy at one mean
/// demand size.
#[derive(Debug, Clone)]
pub struct Fig7aRow {
    pub demand_mbps: f64,
    pub fixed: f64,
    pub bate: f64,
    pub optimal: f64,
}

fn run_admission(
    env: &Env,
    admission: AdmissionStrategy,
    wl: &WorkloadConfig,
    horizon: f64,
    seed: u64,
    measure_false: bool,
) -> bate_sim::SimReport {
    let workload = generate(wl, &env.tunnels, horizon);
    let mut cfg = SimConfig::testbed(horizon, seed);
    cfg.admission = admission;
    cfg.recovery = bate_sim::RecoveryPolicy::NextRound;
    cfg.measure_false_rejections = measure_false;
    let te = Bate;
    Simulation {
        ctx: env.ctx(),
        te: &te,
        config: cfg,
        workload: &workload,
    }
    .run()
}

/// Fig. 7(a): rejection ratio vs demand size (20–50 Mbps) under Fixed /
/// BATE / OPT admission on the testbed.
pub fn fig7a(horizon_min: f64, seeds: &[u64]) -> Vec<Fig7aRow> {
    let env = Env::testbed();
    let pairs = env.demand_pairs(6, 99);
    [20.0, 30.0, 40.0, 50.0]
        .iter()
        .map(|&size| {
            // Seeds fan out in parallel (three simulations each); the merge
            // below keeps seed order.
            let per_seed: Vec<[f64; 3]> = bate_lp::par_map(seeds, |&seed| {
                let mut wl = WorkloadConfig::testbed(pairs.clone(), seed);
                // Demands concentrated around `size`, arrival rate scaled
                // up so the network saturates (the paper's x-axis sweeps
                // the per-demand size at fixed arrivals; larger demands →
                // more rejections).
                wl.arrivals_per_min = 6.0;
                // Demands concentrated around `size`, scaled x5 so the
                // reproduction's 6 demand pairs feel the same packing
                // pressure the paper's full mesh does. (Scaling much
                // harder would shift the pressure from packing to
                // protection infeasibility, which is a different regime.)
                let scale = 5.0;
                wl.bandwidth = BandwidthModel::Uniform {
                    lo: size * 0.8 * scale,
                    hi: size * 1.2 * scale,
                };
                let horizon = horizon_min * 60.0;
                [
                    run_admission(&env, AdmissionStrategy::Fixed, &wl, horizon, seed, false)
                        .rejection_ratio(),
                    run_admission(&env, AdmissionStrategy::Bate, &wl, horizon, seed, false)
                        .rejection_ratio(),
                    run_admission(&env, AdmissionStrategy::Optimal, &wl, horizon, seed, false)
                        .rejection_ratio(),
                ]
            });
            let fixed: Vec<f64> = per_seed.iter().map(|r| r[0]).collect();
            let bate: Vec<f64> = per_seed.iter().map(|r| r[1]).collect();
            let optimal: Vec<f64> = per_seed.iter().map(|r| r[2]).collect();
            Fig7aRow {
                demand_mbps: size,
                fixed: mean(&fixed),
                bate: mean(&bate),
                optimal: mean(&optimal),
            }
        })
        .collect()
}

/// Row of Fig. 12: one arrival rate, all four panels.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    pub arrivals_per_min: f64,
    /// (a) rejection ratio per strategy.
    pub rejection: [f64; 3],
    /// (b) mean link utilization per strategy.
    pub utilization: [f64; 3],
    /// (c) mean admission delay (ms) per strategy.
    pub delay_ms: [f64; 3],
    /// (d) conjecture error (false rejections / arrivals) for Fixed and
    /// BATE.
    pub conjecture_error: [f64; 2],
}

/// Fig. 12(a–d) on the B4 topology, arrival rates 1..=max_rate per minute.
pub fn fig12(max_rate: usize, horizon_min: f64, seed: u64) -> Vec<Fig12Row> {
    // y = 1 pruning keeps the optimal-admission MILP tractable.
    let env = Env::new(topologies::b4(), RoutingScheme::default_ksp4(), 1);
    let pairs = env.demand_pairs(6, 7);
    (1..=max_rate)
        .map(|rate| {
            let mut wl = WorkloadConfig::simulation(pairs.clone(), rate as f64, seed);
            // Scale demand sizes so that rate 5–6 is "normal load" for the
            // synthetic capacities (the paper's scale-down factor of 5
            // plays the same role).
            wl.bandwidth = BandwidthModel::Uniform {
                lo: 10.0 * 8.0,
                hi: 50.0 * 8.0,
            };
            let horizon = horizon_min * 60.0;
            let strategies = [
                AdmissionStrategy::Fixed,
                AdmissionStrategy::Bate,
                AdmissionStrategy::Optimal,
            ];
            let mut rejection = [0.0; 3];
            let mut utilization = [0.0; 3];
            let mut delay_ms = [0.0; 3];
            let mut conjecture_error = [0.0; 2];
            for (i, &strategy) in strategies.iter().enumerate() {
                let measure = strategy != AdmissionStrategy::Optimal;
                let rep = run_admission(&env, strategy, &wl, horizon, seed, measure);
                rejection[i] = rep.rejection_ratio();
                utilization[i] = rep.mean_link_utilization;
                delay_ms[i] = rep.mean_admission_delay_ms();
                if measure && rep.arrived > 0 {
                    conjecture_error[i] = rep.false_rejections as f64 / rep.arrived as f64;
                }
            }
            Fig12Row {
                arrivals_per_min: rate as f64,
                rejection,
                utilization,
                delay_ms,
                conjecture_error,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7a_shapes() {
        let rows = fig7a(3.0, &[1]);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            // OPT rejects least; Fixed rejects most (Fig. 7(a) ordering).
            assert!(
                r.optimal <= r.bate + 0.10,
                "OPT {} should not reject much more than BATE {}",
                r.optimal,
                r.bate
            );
            assert!(
                r.bate <= r.fixed + 0.10,
                "BATE {} should not reject much more than Fixed {}",
                r.bate,
                r.fixed
            );
        }
        // Larger demands are rejected more often.
        assert!(rows.last().unwrap().fixed >= rows[0].fixed - 1e-9);
    }

    #[test]
    fn fig12_admission_delay_ordering() {
        let rows = fig12(2, 3.0, 3);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            // The OPT MILP must be slower than BATE's pipeline (the 30×
            // headline; exact factor depends on the machine).
            assert!(
                r.delay_ms[2] >= r.delay_ms[1],
                "OPT {}ms vs BATE {}ms",
                r.delay_ms[2],
                r.delay_ms[1]
            );
        }
    }
}
