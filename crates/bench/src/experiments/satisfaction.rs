//! E3 (Fig. 7(b)), E6 (Fig. 8), E11/E12 (Fig. 13/14), E16 (Fig. 18):
//! satisfaction experiments.

use super::common::{demand_snapshot, mean, Env};
use bate_baselines::{paper_baselines, traits::Bate, Ffc, TeAlgorithm, Teavar};
use bate_core::AvailabilityClass;
use bate_core::BaDemand;
use bate_net::topologies;
use bate_routing::RoutingScheme;
use bate_sim::analysis::{evaluate_te, satisfaction_fraction};
use bate_sim::workload::{generate, WorkloadConfig};
use bate_sim::{AdmissionStrategy, RecoveryPolicy, SimConfig, Simulation};

/// Fig. 7(b): satisfaction percentage per availability-target bucket for
/// BATE vs TEAVAR-Fixed vs FFC-Fixed (event simulation on the testbed).
pub struct Fig7bRow {
    pub target: f64,
    pub bate: f64,
    pub teavar_fixed: f64,
    pub ffc_fixed: f64,
}

pub fn fig7b(horizon_min: f64, seeds: &[u64]) -> Vec<Fig7bRow> {
    let env = Env::testbed();
    let pairs = env.demand_pairs(6, 21);
    let targets = [0.95, 0.99, 0.9999];

    // Each seed is an independent workload plus three simulations, so the
    // seed sweep fans out in parallel; results come back in seed order and
    // the merge below is sequential, so output is thread-count independent.
    let per_seed: Vec<[[f64; 3]; 3]> = bate_lp::par_map(seeds, |&seed| {
        let mut wl = WorkloadConfig::testbed(pairs.clone(), seed);
        // The paper's testbed spreads 2/min over a full mesh; the
        // reproduction's 6 pairs get the same pressure via more,
        // fatter demands.
        wl.arrivals_per_min = 6.0;
        wl.bandwidth = bate_sim::workload::BandwidthModel::Uniform {
            lo: 10.0 * 5.0,
            hi: 50.0 * 5.0,
        };
        let horizon = horizon_min * 60.0;
        let workload = generate(&wl, &env.tunnels, horizon);
        let setups: [(&dyn TeAlgorithm, AdmissionStrategy, RecoveryPolicy); 3] = [
            (&Bate, AdmissionStrategy::Bate, RecoveryPolicy::Backup),
            (
                &Teavar::new(0.999),
                AdmissionStrategy::Fixed,
                RecoveryPolicy::NextRound,
            ),
            (
                &Ffc::new(1),
                AdmissionStrategy::Fixed,
                RecoveryPolicy::NextRound,
            ),
        ];
        let mut sat = [[0.0f64; 3]; 3];
        for (ai, (te, admission, recovery)) in setups.iter().enumerate() {
            let mut cfg = SimConfig::testbed(horizon, seed);
            cfg.admission = *admission;
            cfg.recovery = *recovery;
            let rep = Simulation {
                ctx: env.ctx(),
                te: *te,
                config: cfg,
                workload: &workload,
            }
            .run();
            for (ti, &t) in targets.iter().enumerate() {
                sat[ai][ti] = rep.satisfaction_for_target(t);
            }
        }
        sat
    });
    let mut per_algo: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); targets.len()]; 3];
    for sat in &per_seed {
        for (ai, row) in sat.iter().enumerate() {
            for (ti, &v) in row.iter().enumerate() {
                per_algo[ai][ti].push(v);
            }
        }
    }

    targets
        .iter()
        .enumerate()
        .map(|(ti, &target)| Fig7bRow {
            target,
            bate: mean(&per_algo[0][ti]),
            teavar_fixed: mean(&per_algo[1][ti]),
            ffc_fixed: mean(&per_algo[2][ti]),
        })
        .collect()
}

/// Fig. 8: delivered/demanded ratio samples per algorithm (CDF input).
pub fn fig8(horizon_min: f64, seed: u64) -> Vec<(&'static str, Vec<f64>)> {
    let env = Env::testbed();
    let pairs = env.demand_pairs(6, 22);
    let mut wl = WorkloadConfig::testbed(pairs, seed);
                wl.arrivals_per_min = 6.0;
                wl.bandwidth = bate_sim::workload::BandwidthModel::Uniform {
                    lo: 10.0 * 5.0,
                    hi: 50.0 * 5.0,
                };
    let horizon = horizon_min * 60.0;
    let workload = generate(&wl, &env.tunnels, horizon);
    let bate = Bate;
    let teavar = Teavar::new(0.999);
    let ffc = Ffc::new(1);
    let setups: [(&dyn TeAlgorithm, AdmissionStrategy); 3] = [
        (&bate, AdmissionStrategy::Bate),
        (&teavar, AdmissionStrategy::AcceptAll),
        (&ffc, AdmissionStrategy::AcceptAll),
    ];
    setups
        .iter()
        .map(|(te, admission)| {
            let mut cfg = SimConfig::testbed(horizon, seed);
            cfg.admission = *admission;
            cfg.recovery = RecoveryPolicy::NextRound;
            let rep = Simulation {
                ctx: env.ctx(),
                te: *te,
                config: cfg,
                workload: &workload,
            }
            .run();
            (te.name(), rep.bw_ratio_samples)
        })
        .collect()
}

/// One Fig. 13/14/18-style series: satisfaction per arrival rate.
pub struct SatisfactionSeries {
    pub algorithm: String,
    /// `(arrival rate, satisfaction fraction)`.
    pub points: Vec<(f64, f64)>,
}

/// Fig. 13: analytic satisfaction of all six algorithms vs arrival rate.
/// BATE admits with its own pipeline (its rejections are not counted as
/// unsatisfied — they were never served); baselines take every demand.
pub fn fig13(max_rate: usize, seeds: &[u64]) -> Vec<SatisfactionSeries> {
    satisfaction_sweep(max_rate, seeds, false)
}

/// Fig. 14: the same sweep with every algorithm behind the fixed admission
/// filter.
pub fn fig14(max_rate: usize, seeds: &[u64]) -> Vec<SatisfactionSeries> {
    satisfaction_sweep(max_rate, seeds, true)
}

fn satisfaction_sweep(
    max_rate: usize,
    seeds: &[u64],
    fixed_admission: bool,
) -> Vec<SatisfactionSeries> {
    let env = Env::new(topologies::b4(), RoutingScheme::default_ksp4(), 2);
    let targets = AvailabilityClass::simulation_targets();

    let mut algos: Vec<Box<dyn TeAlgorithm>> = vec![Box::new(Bate)];
    algos.extend(paper_baselines());

    let mut series: Vec<SatisfactionSeries> = algos
        .iter()
        .map(|a| SatisfactionSeries {
            algorithm: a.name().to_string(),
            points: Vec::new(),
        })
        .collect();

    for rate in 1..=max_rate {
        // Seeds are independent trials: fan the sweep out, collect one
        // value per algorithm per seed, and merge in seed order.
        let per_seed: Vec<Vec<f64>> = bate_lp::par_map(seeds, |&seed| {
            // rate r/min with 5-min lifetimes gives ~5r active demands in the
            // paper; we use 3r demands at ~2x bandwidth for the same pressure.
            let all = demand_snapshot(&env, rate * 4, (100.0, 500.0), &targets, seed);
            let ctx = env.ctx();
            // Admission filter.
            let admitted: Vec<BaDemand> = if fixed_admission {
                let mut current = bate_core::Allocation::new();
                let mut kept = Vec::new();
                for d in &all {
                    if let Some(a) = bate_core::admission::fixed::fixed_admission(&ctx, &current, d)
                    {
                        for (t, f) in a.flows_of(d.id) {
                            current.set(d.id, t, f);
                        }
                        kept.push(d.clone());
                    }
                }
                kept
            } else {
                all.clone()
            };
            algos
                .iter()
                .map(|algo| {
                    let demands: Vec<BaDemand> = if algo.name() == "BATE" && !fixed_admission {
                        // BATE's own admission pipeline.
                        let mut current = bate_core::Allocation::new();
                        let mut kept: Vec<BaDemand> = Vec::new();
                        for d in &all {
                            let out = bate_core::admission::admit(&ctx, &kept, &current, d);
                            if let bate_core::admission::AdmissionOutcome::Admitted {
                                allocation, ..
                            } = out
                            {
                                for (t, f) in allocation.flows_of(d.id) {
                                    current.set(d.id, t, f);
                                }
                                kept.push(d.clone());
                            }
                        }
                        kept
                    } else {
                        admitted.clone()
                    };
                    if demands.is_empty() {
                        return 1.0;
                    }
                    let outcomes = evaluate_te(&ctx, algo.as_ref(), &demands);
                    satisfaction_fraction(&outcomes)
                })
                .collect()
        });
        let mut per_algo: Vec<Vec<f64>> = vec![Vec::new(); algos.len()];
        for vals in &per_seed {
            for (ai, &v) in vals.iter().enumerate() {
                per_algo[ai].push(v);
            }
        }
        for (ai, vals) in per_algo.iter().enumerate() {
            series[ai].points.push((rate as f64, mean(vals)));
        }
    }
    series
}

/// Fig. 18: achieved availability (satisfaction) per routing scheme.
pub fn fig18(max_rate: usize, seeds: &[u64]) -> Vec<SatisfactionSeries> {
    let schemes = [
        ("Oblivious", RoutingScheme::Oblivious(4)),
        ("Edge-disjoint", RoutingScheme::EdgeDisjoint(4)),
        ("KSP-4", RoutingScheme::Ksp(4)),
    ];
    let targets = AvailabilityClass::simulation_targets();
    schemes
        .iter()
        .map(|(name, scheme)| {
            let env = Env::new(topologies::b4(), *scheme, 2);
            let ctx = env.ctx();
            let points = (1..=max_rate)
                .map(|rate| {
                    // Per-seed trials fan out; mean over seed order.
                    let vals: Vec<f64> = bate_lp::par_map(seeds, |&seed| {
                            let all =
                                demand_snapshot(&env, rate * 4, (100.0, 500.0), &targets, seed);
                            // BATE serves admitted demands (as in Fig. 13).
                            let mut admitted = Vec::new();
                            let mut current = bate_core::Allocation::new();
                            for d in &all {
                                if let bate_core::admission::AdmissionOutcome::Admitted {
                                    allocation,
                                    ..
                                } = bate_core::admission::admit(&ctx, &admitted, &current, d)
                                {
                                    for (t, f) in allocation.flows_of(d.id) {
                                        current.set(d.id, t, f);
                                    }
                                    admitted.push(d.clone());
                                }
                            }
                            let outcomes = evaluate_te(&ctx, &Bate, &admitted);
                            satisfaction_fraction(&outcomes)
                        });
                    (rate as f64, mean(&vals))
                })
                .collect();
            SatisfactionSeries {
                algorithm: name.to_string(),
                points,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_bate_leads() {
        let series = fig13(2, &[5]);
        let bate = series.iter().find(|s| s.algorithm == "BATE").unwrap();
        let ffc = series.iter().find(|s| s.algorithm == "FFC").unwrap();
        for ((_, b), (_, f)) in bate.points.iter().zip(&ffc.points) {
            assert!(b >= f, "BATE {b} must beat FFC {f}");
        }
        // BATE stays near 100 % (its admission only takes what it can
        // guarantee).
        for (_, b) in &bate.points {
            assert!(*b > 0.95, "BATE satisfaction {b}");
        }
    }

    #[test]
    fn fig18_all_schemes_reasonable() {
        let series = fig18(1, &[3]);
        assert_eq!(series.len(), 3);
        for s in &series {
            for (_, v) in &s.points {
                assert!(*v > 0.9, "{}: {v}", s.algorithm);
            }
        }
    }
}
