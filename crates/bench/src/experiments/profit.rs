//! E4/E5 (Fig. 7(c)/(d)), E13 (Fig. 15), E17 (Fig. 19), E19 (Fig. 21):
//! profit and failure-recovery experiments.

use super::common::{demand_snapshot, mean, Env};
use bate_baselines::{paper_baselines, traits::Bate, Ffc, TeAlgorithm, Teavar};
use bate_core::recovery::greedy::greedy_recovery;
use bate_core::recovery::milp::optimal_recovery;
use bate_core::AvailabilityClass;
use bate_net::{topologies, GroupId, Scenario};
use bate_routing::RoutingScheme;
use bate_sim::analysis::profit_under_scenario;
use bate_sim::workload::{generate, WorkloadConfig};
use bate_sim::{AdmissionStrategy, RecoveryPolicy, SimConfig, Simulation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Fig. 7(c)/(d): profit loss and overall profit gain per (admission
/// strategy × TE algorithm) on the testbed, under real failure events.
pub struct Fig7cdCell {
    pub admission: &'static str,
    pub te: &'static str,
    /// 1 - profit/baseline (Fig. 7(c)).
    pub profit_loss: f64,
    /// profit/baseline (Fig. 7(d)).
    pub profit_gain: f64,
}

pub fn fig7cd(horizon_min: f64, seeds: &[u64]) -> Vec<Fig7cdCell> {
    let env = Env::testbed();
    let pairs = env.demand_pairs(6, 31);
    let admissions = [
        ("Fixed", AdmissionStrategy::Fixed),
        ("BATE-AD", AdmissionStrategy::Bate),
        ("OPT", AdmissionStrategy::Optimal),
    ];
    let bate = Bate;
    let teavar = Teavar::new(0.999);
    let ffc = Ffc::new(1);
    let tes: [(&'static str, &dyn TeAlgorithm, RecoveryPolicy); 3] = [
        ("BATE", &bate, RecoveryPolicy::Backup),
        ("TEAVAR", &teavar, RecoveryPolicy::NextRound),
        ("FFC", &ffc, RecoveryPolicy::NextRound),
    ];
    let pool = bate_core::pricing::testbed_services();

    let mut out = Vec::new();
    for (aname, admission) in admissions {
        for (tname, te, recovery) in tes {
            // Per-seed simulations fan out; the mean is seed-order stable.
            let gains: Vec<f64> = bate_lp::par_map(seeds, |&seed| {
                let mut wl = WorkloadConfig::testbed(pairs.clone(), seed);
                wl.refund_pool = pool.clone();
                let horizon = horizon_min * 60.0;
                let workload = generate(&wl, &env.tunnels, horizon);
                let mut cfg = SimConfig::testbed(horizon, seed);
                cfg.admission = admission;
                cfg.recovery = recovery;
                let rep = Simulation {
                    ctx: env.ctx(),
                    te,
                    config: cfg,
                    workload: &workload,
                }
                .run();
                rep.profit_gain(&pool)
            });
            let gain = mean(&gains);
            out.push(Fig7cdCell {
                admission: aname,
                te: tname,
                profit_loss: 1.0 - gain,
                profit_gain: gain,
            });
        }
    }
    out
}

/// Fig. 15: profit gain after failures vs arrival rate, all algorithms,
/// analytic: allocate → draw weighted single-failure scenarios → recover
/// (BATE) or keep the allocation (baselines) → account refunds.
pub struct Fig15Row {
    pub arrivals_per_min: f64,
    /// `(algorithm, mean profit gain)`.
    pub gains: Vec<(String, f64)>,
}

pub fn fig15(rates: &[usize], seeds: &[u64]) -> Vec<Fig15Row> {
    let env = Env::new(topologies::b4(), RoutingScheme::default_ksp4(), 2);
    let targets = AvailabilityClass::simulation_targets();
    let mut algos: Vec<Box<dyn TeAlgorithm>> = vec![Box::new(Bate)];
    algos.extend(paper_baselines());
    let ctx = env.ctx();

    rates
        .iter()
        .map(|&rate| {
            // Seeds fan out in parallel, each producing one gain value per
            // algorithm; the merge below is in seed order.
            let per_seed: Vec<Vec<f64>> = bate_lp::par_map(seeds, |&seed| {
                let demands = demand_snapshot(&env, rate * 4, (100.0, 500.0), &targets, seed);
                let baseline: f64 = demands.iter().map(|d| d.price).sum();
                // Failure scenarios: every single fate-group failure,
                // weighted by its probability.
                let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
                let picks: Vec<GroupId> = (0..5)
                    .map(|_| GroupId(rng.gen_range(0..env.topo.num_groups())))
                    .collect();
                algos
                    .iter()
                    .map(|algo| {
                        let alloc = algo
                            .allocate(&ctx, &demands)
                            .unwrap_or_else(|_| bate_core::Allocation::new());
                        let mut total = 0.0;
                        for &g in &picks {
                            let sc = Scenario::with_failures(&env.topo, &[g]);
                            let profit = if algo.name() == "BATE" {
                                // BATE reroutes with Algorithm 2.
                                greedy_recovery(&ctx, &demands, &sc).profit
                            } else {
                                profit_under_scenario(&ctx, &alloc, &demands, &sc)
                            };
                            total += profit / baseline;
                        }
                        total / picks.len() as f64
                    })
                    .collect()
            });
            let mut gains: Vec<(String, Vec<f64>)> = algos
                .iter()
                .map(|a| (a.name().to_string(), Vec::new()))
                .collect();
            for vals in &per_seed {
                for (ai, &v) in vals.iter().enumerate() {
                    gains[ai].1.push(v);
                }
            }
            Fig15Row {
                arrivals_per_min: rate as f64,
                gains: gains
                    .into_iter()
                    .map(|(name, vals)| (name, mean(&vals)))
                    .collect(),
            }
        })
        .collect()
}

/// Fig. 19 + Fig. 21: greedy recovery quality (OPT profit / greedy profit)
/// and speedup (OPT time / greedy time) vs arrival rate.
pub struct RecoveryRow {
    pub arrivals_per_min: f64,
    pub approx_ratio: f64,
    pub speedup: f64,
}

pub fn fig19_21(rates: &[usize], seeds: &[u64]) -> Vec<RecoveryRow> {
    let env = Env::testbed();
    let ctx = env.ctx();
    let targets = AvailabilityClass::simulation_targets();
    rates
        .iter()
        .map(|&rate| {
            let mut ratios = Vec::new();
            let mut speedups = Vec::new();
            // Deliberately sequential: this sweep measures wall-clock
            // (greedy vs OPT recovery time), and concurrent runs would
            // contend for cores and distort the speedup ratios.
            for &seed in seeds {
                let demands = demand_snapshot(&env, rate * 2, (50.0, 250.0), &targets, seed);
                let n = |s: &str| env.topo.find_node(s).unwrap();
                let l4 = env.topo.find_link(n("DC4"), n("DC5")).unwrap();
                let sc = Scenario::with_failures(&env.topo, &[env.topo.link(l4).group]);

                let t0 = Instant::now();
                let grd = greedy_recovery(&ctx, &demands, &sc);
                let t_greedy = t0.elapsed().as_secs_f64().max(1e-7);

                let t1 = Instant::now();
                if let Ok(opt) = optimal_recovery(&ctx, &demands, &sc) {
                    let t_opt = t1.elapsed().as_secs_f64().max(1e-7);
                    if grd.profit > 0.0 {
                        ratios.push(opt.profit / grd.profit);
                    }
                    speedups.push(t_opt / t_greedy);
                }
            }
            RecoveryRow {
                arrivals_per_min: rate as f64,
                approx_ratio: mean(&ratios),
                speedup: mean(&speedups),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig19_ratio_bounds() {
        let rows = fig19_21(&[2, 4], &[1, 2]);
        for r in &rows {
            assert!(
                r.approx_ratio >= 1.0 - 1e-6,
                "optimal cannot lose to greedy: {}",
                r.approx_ratio
            );
            assert!(
                r.approx_ratio <= 2.0 + 1e-6,
                "2-approximation bound: {}",
                r.approx_ratio
            );
            assert!(r.speedup > 0.0);
        }
    }

    #[test]
    fn fig15_bate_retains_most_profit() {
        let rows = fig15(&[2], &[3]);
        let row = &rows[0];
        let bate = row
            .gains
            .iter()
            .find(|(n, _)| n == "BATE")
            .map(|(_, g)| *g)
            .unwrap();
        for (name, gain) in &row.gains {
            if name != "BATE" {
                assert!(
                    bate >= gain - 0.05,
                    "BATE {bate} should retain at least as much as {name} {gain}"
                );
            }
        }
    }
}
