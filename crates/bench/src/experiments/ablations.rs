//! Ablations of the reproduction's own design choices (DESIGN.md calls
//! these out):
//!
//! * **Scenario collapsing** — the per-demand state collapse of
//!   `bate_core::profile` vs the naive one-`B`-per-scenario formulation
//!   the paper writes down literally. Same optimum, very different LP
//!   sizes.
//! * **Hardening** — how often the Eq. 4 relaxation leaves hard targets
//!   unmet, and how many the post-LP repair pass fixes.
//! * **Shadow prices** — which links the scheduling LP actually prices
//!   (dual values), the hook for Pretium-style congestion pricing.

use super::common::{demand_snapshot, Env};
use bate_core::profile::DemandProfile;
use bate_core::scheduling::{harden, schedule};
use bate_core::{AvailabilityClass, BaDemand, TeContext};
use bate_lp::{Problem, Relation, Sense, SolveError, VarId};
use bate_routing::TunnelId;
use std::time::Instant;

/// Naive scheduling LP: one `B` variable per (demand, raw scenario), as
/// Eq. 7 is literally written. Identical feasible set and optimum to
/// `bate_core::scheduling::schedule` — only the model size differs.
pub fn schedule_naive(
    ctx: &TeContext,
    demands: &[BaDemand],
) -> Result<(f64, usize, usize), SolveError> {
    let mut p = Problem::new(Sense::Minimize);
    let mut f_vars: Vec<Vec<Vec<VarId>>> = Vec::with_capacity(demands.len());
    for demand in demands {
        let mut per = Vec::new();
        for &(pair, _) in &demand.bandwidth {
            let vars: Vec<VarId> = (0..ctx.tunnels.tunnels(pair).len())
                .map(|t| {
                    let v = p.add_var(&format!("f[{}][{pair}][{t}]", demand.id.0));
                    p.set_objective(v, 1.0);
                    v
                })
                .collect();
            per.push(vars);
        }
        f_vars.push(per);
    }

    for (di, demand) in demands.iter().enumerate() {
        for (ki, &(_, b)) in demand.bandwidth.iter().enumerate() {
            let terms: Vec<(VarId, f64)> = f_vars[di][ki].iter().map(|&v| (v, 1.0)).collect();
            p.add_constraint(&terms, Relation::Ge, b);
        }
        // One B per raw scenario — no collapsing.
        let mut avail_terms = Vec::new();
        for (zi, z) in ctx.scenarios.iter().enumerate() {
            let bv = p.add_bounded_var(&format!("B[{}][{zi}]", demand.id.0), 1.0);
            for (ki, &(pair, b)) in demand.bandwidth.iter().enumerate() {
                let mut terms: Vec<(VarId, f64)> = vec![(bv, b)];
                for (ti, &fv) in f_vars[di][ki].iter().enumerate() {
                    let path = ctx.tunnels.path(TunnelId { pair, tunnel: ti });
                    if path.available_under(ctx.topo, z) {
                        terms.push((fv, -1.0));
                    }
                }
                p.add_constraint(&terms, Relation::Le, 0.0);
            }
            avail_terms.push((bv, z.probability));
        }
        p.add_constraint(&avail_terms, Relation::Ge, demand.beta);
    }

    let mut per_link: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); ctx.topo.num_links()];
    for (di, demand) in demands.iter().enumerate() {
        for (ki, &(pair, _)) in demand.bandwidth.iter().enumerate() {
            for (ti, &fv) in f_vars[di][ki].iter().enumerate() {
                for &l in &ctx.tunnels.path(TunnelId { pair, tunnel: ti }).links {
                    per_link[l.index()].push((fv, 1.0));
                }
            }
        }
    }
    for (li, terms) in per_link.iter().enumerate() {
        if !terms.is_empty() {
            let cap = ctx.topo.link(bate_net::LinkId(li)).capacity;
            p.add_constraint(terms, Relation::Le, cap);
        }
    }

    let vars = p.num_vars();
    let rows = p.num_constraints();
    let sol = p.solve()?;
    Ok((sol.objective, vars, rows))
}

/// Collapsing ablation result for one topology.
pub struct CollapseAblation {
    pub topology: String,
    pub scenarios: usize,
    /// Total collapsed states across demands.
    pub collapsed_states: usize,
    pub collapsed_secs: f64,
    pub naive_secs: f64,
    pub naive_vars: usize,
    /// |collapsed objective - naive objective| (must be ~0: the collapse
    /// is exact).
    pub objective_gap: f64,
}

/// Run the collapsing ablation on the testbed at a given pruning depth.
pub fn collapse_ablation(max_failures: usize, seed: u64) -> CollapseAblation {
    let env = Env::new(
        bate_net::topologies::testbed6(),
        bate_routing::RoutingScheme::default_ksp4(),
        max_failures,
    );
    let ctx = env.ctx();
    let targets = AvailabilityClass::testbed_targets();
    let demands = demand_snapshot(&env, 8, (50.0, 200.0), &targets, seed);

    let t0 = Instant::now();
    let collapsed = schedule(&ctx, &demands);
    let collapsed_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let naive = schedule_naive(&ctx, &demands);
    let naive_secs = t1.elapsed().as_secs_f64();

    let collapsed_states: usize = demands
        .iter()
        .map(|d| DemandProfile::collapse(&ctx, d).len())
        .sum();

    let (objective_gap, naive_vars) = match (&collapsed, &naive) {
        (Ok(c), Ok((obj, vars, _))) => ((c.total_bandwidth - obj).abs(), *vars),
        _ => (0.0, 0),
    };
    CollapseAblation {
        topology: env.topo.name().to_string(),
        scenarios: ctx.scenarios.len(),
        collapsed_states,
        collapsed_secs,
        naive_secs,
        naive_vars,
        objective_gap,
    }
}

/// Hardening ablation: violations before/after the repair pass.
pub struct HardenAblation {
    pub demands: usize,
    pub violations_before: usize,
    pub violations_after: usize,
}

pub fn harden_ablation(seeds: &[u64]) -> HardenAblation {
    let env = Env::testbed();
    let ctx = env.ctx();
    let targets = AvailabilityClass::testbed_targets();
    // Per-seed rounds (a schedule plus a hardening pass each) fan out;
    // the sums below are order-independent integer counts.
    let per_seed: Vec<(usize, usize, usize)> = bate_lp::par_map(seeds, |&seed| {
        let demands = demand_snapshot(&env, 10, (100.0, 400.0), &targets, seed);
        match schedule(&ctx, &demands) {
            Ok(mut res) => {
                let before = demands
                    .iter()
                    .filter(|d| !res.allocation.meets_target(&ctx, d))
                    .count();
                let after = harden(&ctx, &demands, &mut res);
                (demands.len(), before, after)
            }
            Err(_) => (0, 0, 0),
        }
    });
    let mut total = 0;
    let mut before = 0;
    let mut after = 0;
    for (t, b, a) in per_seed {
        total += t;
        before += b;
        after += a;
    }
    HardenAblation {
        demands: total,
        violations_before: before,
        violations_after: after,
    }
}

/// Top-k priced links of a scheduling round (shadow prices).
pub fn shadow_prices(seed: u64, k: usize) -> Vec<(String, f64)> {
    let env = Env::testbed();
    let ctx = env.ctx();
    let targets = AvailabilityClass::testbed_targets();
    let demands = demand_snapshot(&env, 10, (100.0, 400.0), &targets, seed);
    let Ok(res) = schedule(&ctx, &demands) else {
        return Vec::new();
    };
    let mut priced: Vec<(String, f64)> = env
        .topo
        .links()
        .map(|(l, def)| {
            (
                format!(
                    "{}→{}",
                    env.topo.node_name(def.src),
                    env.topo.node_name(def.dst)
                ),
                res.link_prices[l.index()],
            )
        })
        .filter(|(_, p)| *p > 1e-9)
        .collect();
    priced.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    priced.truncate(k);
    priced
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collapsing_is_exact_and_smaller() {
        let ab = collapse_ablation(2, 5);
        assert!(
            ab.objective_gap < 1e-5,
            "collapse changed the optimum by {}",
            ab.objective_gap
        );
        assert!(
            ab.collapsed_states < ab.scenarios * 8,
            "collapse should shrink the state space: {} states vs {} scenarios",
            ab.collapsed_states,
            ab.scenarios
        );
    }

    #[test]
    fn hardening_never_increases_violations() {
        let ab = harden_ablation(&[1, 2, 3]);
        assert!(ab.violations_after <= ab.violations_before);
        assert!(ab.demands > 0);
    }
}
