//! Shared experiment plumbing: contexts, demand snapshots, and formatting.

use bate_core::{BaDemand, DemandId, TeContext};
use bate_net::{ScenarioSet, Topology};
use bate_routing::{RoutingScheme, TunnelSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A topology with its tunnels and pruned scenario set, bundled so
/// experiments can borrow a [`TeContext`] from it.
pub struct Env {
    pub topo: Topology,
    pub tunnels: TunnelSet,
    pub scenarios: ScenarioSet,
}

impl Env {
    pub fn new(topo: Topology, routing: RoutingScheme, max_failures: usize) -> Env {
        let tunnels = TunnelSet::compute(&topo, routing);
        let scenarios = ScenarioSet::enumerate(&topo, max_failures);
        Env {
            topo,
            tunnels,
            scenarios,
        }
    }

    pub fn testbed() -> Env {
        Env::new(
            bate_net::topologies::testbed6(),
            RoutingScheme::default_ksp4(),
            2,
        )
    }

    pub fn ctx(&self) -> TeContext<'_> {
        TeContext::new(&self.topo, &self.tunnels, &self.scenarios)
    }

    /// A deterministic subset of s-d pairs with at least 2 tunnels each —
    /// the pairs experiments place demands on.
    pub fn demand_pairs(&self, count: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut candidates: Vec<usize> = (0..self.tunnels.num_pairs())
            .filter(|&p| self.tunnels.tunnels(p).len() >= 2)
            .collect();
        let mut out = Vec::new();
        while out.len() < count && !candidates.is_empty() {
            let i = rng.gen_range(0..candidates.len());
            out.push(candidates.swap_remove(i));
        }
        out
    }
}

/// Draw a steady-state snapshot of `count` active demands, as §5.2's
/// workload would produce (the paper's expected active count is
/// `rate × mean duration`; the reproduction keeps LP sizes laptop-friendly
/// by using fewer, proportionally fatter demands — same capacity pressure,
/// smaller models).
pub fn demand_snapshot(
    env: &Env,
    count: usize,
    bw_range: (f64, f64),
    availability_targets: &[f64],
    seed: u64,
) -> Vec<BaDemand> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = count.max(1);
    let pairs = env.demand_pairs(6, seed ^ 0xABCD);
    let refunds = bate_core::pricing::azure_services();
    (0..n)
        .map(|i| {
            let pair = pairs[rng.gen_range(0..pairs.len())];
            let bw = rng.gen_range(bw_range.0..=bw_range.1);
            let beta = availability_targets[rng.gen_range(0..availability_targets.len())];
            let sched = &refunds[rng.gen_range(0..refunds.len())];
            BaDemand {
                id: DemandId(i as u64 + 1),
                bandwidth: vec![(pair, bw)],
                beta,
                price: bw,
                refund_ratio: sched.violation_ratio(),
            }
        })
        .collect()
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_and_snapshot() {
        let env = Env::testbed();
        let demands = demand_snapshot(&env, 20, (10.0, 50.0), &[0.9, 0.99], 1);
        assert_eq!(demands.len(), 20);
        for d in &demands {
            assert!(d.total_bandwidth() >= 10.0 && d.total_bandwidth() <= 50.0);
            assert!(d.beta == 0.9 || d.beta == 0.99);
            assert!(d.refund_ratio > 0.0);
        }
        // Pairs are valid tunnel-set indices with tunnels.
        for d in &demands {
            let (pair, _) = d.bandwidth[0];
            assert!(!env.tunnels.tunnels(pair).is_empty());
        }
    }

    #[test]
    fn helpers() {
        assert_eq!(pct(0.345), "34.5%");
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
