//! Recovery-storm deltas (DESIGN.md §6x): what a region fiber cut costs,
//! per topology.
//!
//! Each run drives the storm workload — a region SRLG severed across
//! several scheduling rounds of concurrent 1–5% churn — and reports the
//! three deltas the correlated model exists to expose:
//!
//! * **BA delta** — the joint probability of the storm scenario vs the
//!   per-group independence product (the availability mass a
//!   correlation-blind model misprices),
//! * **profit delta** — baseline profit retained by Algorithm 2 during
//!   the storm, and its gap to the exact recovery MILP,
//! * **recovery latency** — mean wall-clock of Algorithm 2 and the MILP
//!   per storm round (`measure_time` on, so these are real).

use bate_core::TeContext;
use bate_net::{topologies, GroupId, ScenarioSet, SrlgSet, Topology};
use bate_routing::{RoutingScheme, TunnelSet};
use bate_sim::storm::{self, StormConfig};

/// Aggregated storm deltas for one topology (means over seeds).
pub struct StormDelta {
    pub topology: String,
    /// Fate groups severed together by the region event.
    pub srlg_groups: usize,
    /// Exact joint probability of the storm scenario.
    pub scenario_probability: f64,
    /// The same state priced by per-group independence.
    pub independent_probability: f64,
    /// Mean fraction of baseline profit Algorithm 2 retains in-storm.
    pub greedy_retention: f64,
    /// Mean greedy-vs-optimal profit gap fraction.
    pub milp_gap: f64,
    /// Mean Algorithm-2 latency per storm round, ms.
    pub greedy_ms: f64,
    /// Mean exact-MILP latency per storm round, ms.
    pub milp_ms: f64,
}

/// The storm region per topology: toy4 and testbed6 use the hand-picked
/// regions the golden timelines pin (the DC4 conduit and DC1's full
/// uplink set); synthetic topologies take the widest conduit the seeded
/// SRLG generator produces.
fn storm_region(name: &str, topo: &Topology, seed: u64) -> Vec<GroupId> {
    match name {
        "toy4" => vec![GroupId(1), GroupId(3)],
        "testbed6" => vec![GroupId(0), GroupId(5), GroupId(7)],
        _ => {
            let srlgs = SrlgSet::generate(topo, seed);
            srlgs
                .iter()
                .max_by_key(|(_, s)| s.groups.count())
                .map(|(_, s)| s.groups.iter().map(GroupId).collect())
                .unwrap_or_else(|| vec![GroupId(0), GroupId(1)])
        }
    }
}

fn run_one(topo: Topology, depth: usize, seeds: &[u64]) -> StormDelta {
    let name = topo.name().to_string();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
    let scenarios = ScenarioSet::enumerate(&topo, depth);
    let ctx = TeContext::new(&topo, &tunnels, &scenarios);
    let groups = storm_region(&name, &topo, 71);
    // Prefer pairs whose tunnels cross the severed region — a storm that
    // misses every demand measures nothing.
    let in_region = |p: usize| {
        tunnels.tunnels(p).iter().any(|path| {
            path.links
                .iter()
                .any(|&l| groups.contains(&topo.link(l).group))
        })
    };
    let mut pairs: Vec<usize> = (0..tunnels.num_pairs())
        .filter(|&p| !tunnels.tunnels(p).is_empty())
        .collect();
    pairs.sort_by_key(|&p| (!in_region(p), p));
    pairs.truncate(4);
    pairs.sort_unstable();

    let mut agg = StormDelta {
        topology: name,
        srlg_groups: groups.len(),
        scenario_probability: 0.0,
        independent_probability: 0.0,
        greedy_retention: 0.0,
        milp_gap: 0.0,
        greedy_ms: 0.0,
        milp_ms: 0.0,
    };
    for &seed in seeds {
        let mut cfg = StormConfig::regional(pairs.clone(), 6, groups.clone(), seed);
        cfg.measure_time = true;
        // Across arbitrary topologies the top availability classes are not
        // always servable on 2 tunnels; keep every draw admissible so the
        // run never aborts on an infeasible scheduling round.
        cfg.churn.availability_targets = vec![0.9, 0.95, 0.99];
        let report = storm::run(&ctx, &cfg).expect("storm run");
        agg.scenario_probability += report.scenario_probability;
        agg.independent_probability += report.independent_probability;
        agg.greedy_retention += report.greedy_profit_retention();
        agg.milp_gap += report.milp_profit_gap();
        agg.greedy_ms += report.mean_greedy_ms();
        agg.milp_ms += report.mean_milp_ms();
    }
    let n = seeds.len().max(1) as f64;
    agg.scenario_probability /= n;
    agg.independent_probability /= n;
    agg.greedy_retention /= n;
    agg.milp_gap /= n;
    agg.greedy_ms /= n;
    agg.milp_ms /= n;
    agg
}

/// Storm deltas on toy4, testbed6, and B4 (generated conduits).
pub fn storm_deltas(seeds: &[u64]) -> Vec<StormDelta> {
    vec![
        run_one(topologies::toy4(), 2, seeds),
        run_one(topologies::testbed6(), 1, seeds),
        run_one(topologies::b4(), 1, seeds),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_deltas_cover_all_topologies_and_diverge() {
        let deltas = storm_deltas(&[11]);
        assert_eq!(deltas.len(), 3);
        for d in &deltas {
            // The joint storm probability must dwarf the independence
            // product — that divergence is the whole point of the model.
            assert!(
                d.scenario_probability > 10.0 * d.independent_probability,
                "{}: joint {} vs independent {}",
                d.topology,
                d.scenario_probability,
                d.independent_probability
            );
            assert!((0.0..=1.0).contains(&d.greedy_retention), "{}", d.topology);
            assert!(d.milp_gap >= -1e-9, "{}", d.topology);
            assert!(d.greedy_ms >= 0.0 && d.milp_ms >= 0.0);
        }
    }
}
