//! E8 (Fig. 10), E9 (Fig. 11), E18 (Fig. 20): failure-process experiments.

use super::common::{mean, Env};
use bate_baselines::{traits::Bate, Ffc, TeAlgorithm, Teavar};
use bate_sim::workload::{generate, WorkloadConfig};
use bate_sim::{AdmissionStrategy, RecoveryPolicy, SimConfig, Simulation};

/// Fig. 10: how often each testbed link failed across repeated runs.
pub fn fig10(runs: usize, run_secs: f64) -> Vec<(String, usize)> {
    let env = Env::testbed();
    let pairs = env.demand_pairs(3, 41);
    let mut counts = vec![0usize; env.topo.num_groups()];
    for seed in 0..runs as u64 {
        let mut wl = WorkloadConfig::testbed(pairs.clone(), seed);
                // The paper's testbed spreads 2/min over a full mesh; the
                // reproduction's 6 pairs get the same pressure via more,
                // fatter demands.
                wl.arrivals_per_min = 6.0;
                wl.bandwidth = bate_sim::workload::BandwidthModel::Uniform {
                    lo: 10.0 * 5.0,
                    hi: 50.0 * 5.0,
                };
        let workload = generate(&wl, &env.tunnels, run_secs);
        let cfg = SimConfig::testbed(run_secs, seed);
        let te = Bate;
        let rep = Simulation {
            ctx: env.ctx(),
            te: &te,
            config: cfg,
            workload: &workload,
        }
        .run();
        for (i, c) in rep.failure_counts.iter().enumerate() {
            counts[i] += c;
        }
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| (format!("L{}", i + 1), c))
        .collect()
}

/// Fig. 11: per-run data-loss ratios for BATE / TEAVAR / FFC (CDF input).
pub fn fig11(runs: usize, run_min: f64) -> Vec<(&'static str, Vec<f64>)> {
    let env = Env::testbed();
    let pairs = env.demand_pairs(6, 42);
    let bate = Bate;
    let teavar = Teavar::new(0.999);
    let ffc = Ffc::new(1);
    let setups: [(&dyn TeAlgorithm, AdmissionStrategy, RecoveryPolicy); 3] = [
        (&bate, AdmissionStrategy::Bate, RecoveryPolicy::Backup),
        (
            &teavar,
            AdmissionStrategy::AcceptAll,
            RecoveryPolicy::NextRound,
        ),
        (
            &ffc,
            AdmissionStrategy::AcceptAll,
            RecoveryPolicy::NextRound,
        ),
    ];
    let run_seeds: Vec<u64> = (0..runs as u64).collect();
    setups
        .iter()
        .map(|(te, admission, recovery)| {
            // Independent runs fan out; the collected losses keep seed order.
            let losses: Vec<f64> = bate_lp::par_map(&run_seeds, |&seed| {
                    let mut wl = WorkloadConfig::testbed(pairs.clone(), seed);
                // The paper's testbed spreads 2/min over a full mesh; the
                // reproduction's 6 pairs get the same pressure via more,
                // fatter demands.
                wl.arrivals_per_min = 6.0;
                wl.bandwidth = bate_sim::workload::BandwidthModel::Uniform {
                    lo: 10.0 * 5.0,
                    hi: 50.0 * 5.0,
                };
                    let horizon = run_min * 60.0;
                    let workload = generate(&wl, &env.tunnels, horizon);
                    let mut cfg = SimConfig::testbed(horizon, seed);
                    cfg.admission = *admission;
                    cfg.recovery = *recovery;
                    Simulation {
                        ctx: env.ctx(),
                        te: *te,
                        config: cfg,
                        workload: &workload,
                    }
                    .run()
                    .data_loss_ratio
                });
            (te.name(), losses)
        })
        .collect()
}

/// Fig. 20 (Appendix E): satisfaction vs link repair time.
pub struct Fig20Row {
    pub failure_secs: f64,
    pub bate: f64,
    pub teavar: f64,
    pub ffc: f64,
}

pub fn fig20(repair_times: &[f64], horizon_min: f64, seeds: &[u64]) -> Vec<Fig20Row> {
    let env = Env::testbed();
    let pairs = env.demand_pairs(6, 43);
    let bate = Bate;
    let teavar = Teavar::new(0.999);
    let ffc = Ffc::new(1);
    repair_times
        .iter()
        .map(|&rt| {
            // Per-seed trials (a workload plus three simulations each) fan
            // out; merge preserves seed order.
            let per_seed: Vec<[f64; 3]> = bate_lp::par_map(seeds, |&seed| {
                let mut wl = WorkloadConfig::testbed(pairs.clone(), seed);
                // The paper's testbed spreads 2/min over a full mesh; the
                // reproduction's 6 pairs get the same pressure via more,
                // fatter demands.
                wl.arrivals_per_min = 6.0;
                wl.bandwidth = bate_sim::workload::BandwidthModel::Uniform {
                    lo: 10.0 * 5.0,
                    hi: 50.0 * 5.0,
                };
                let horizon = horizon_min * 60.0;
                let workload = generate(&wl, &env.tunnels, horizon);
                let setups: [(&dyn TeAlgorithm, AdmissionStrategy, RecoveryPolicy); 3] = [
                    (&bate, AdmissionStrategy::Bate, RecoveryPolicy::Backup),
                    (&teavar, AdmissionStrategy::Fixed, RecoveryPolicy::NextRound),
                    (&ffc, AdmissionStrategy::Fixed, RecoveryPolicy::NextRound),
                ];
                let mut sat = [0.0f64; 3];
                for (i, (te, admission, recovery)) in setups.iter().enumerate() {
                    let mut cfg = SimConfig::testbed(horizon, seed);
                    cfg.repair_time_secs = rt;
                    cfg.admission = *admission;
                    cfg.recovery = *recovery;
                    let rep = Simulation {
                        ctx: env.ctx(),
                        te: *te,
                        config: cfg,
                        workload: &workload,
                    }
                    .run();
                    sat[i] = rep.satisfaction_fraction();
                }
                sat
            });
            let mut sat = [Vec::new(), Vec::new(), Vec::new()];
            for row in &per_seed {
                for (i, &v) in row.iter().enumerate() {
                    sat[i].push(v);
                }
            }
            Fig20Row {
                failure_secs: rt,
                bate: mean(&sat[0]),
                teavar: mean(&sat[1]),
                ffc: mean(&sat[2]),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_l4_fails_most() {
        // L4 fails 1 % per second — two orders of magnitude above the
        // rest; over enough simulated time it must dominate (Fig. 10).
        let counts = fig10(3, 200.0);
        assert_eq!(counts.len(), 8);
        let l4 = counts[3].1;
        let others: usize = counts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 3)
            .map(|(_, c)| c.1)
            .sum();
        assert!(l4 > others, "L4 {l4} vs others {others}");
    }

    #[test]
    fn fig11_loss_ratios_bounded() {
        let series = fig11(2, 5.0);
        assert_eq!(series.len(), 3);
        for (name, losses) in &series {
            for l in losses {
                assert!((0.0..=1.0).contains(l), "{name}: {l}");
            }
        }
    }
}
