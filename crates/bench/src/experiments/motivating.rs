//! E1 (Fig. 2) and E7 (Table 3 / Fig. 9): the motivating example and the
//! three-parallel-demands case study.

use super::common::Env;
use bate_baselines::{traits::Bate, Ffc, TeAlgorithm, Teavar};
use bate_core::{Allocation, BaDemand, TeContext};
use bate_net::ScenarioSet;
use bate_routing::RoutingScheme;

/// One algorithm's outcome on a demand set: per-tunnel allocations and
/// per-demand achieved availability.
pub struct CaseStudy {
    pub algorithm: &'static str,
    /// `(demand id, tunnel description, rate)`.
    pub rows: Vec<(u64, String, f64)>,
    /// `(demand id, target, achieved)`.
    pub availability: Vec<(u64, f64, f64)>,
}

fn run_case(
    env: &Env,
    te: &dyn TeAlgorithm,
    demands: &[BaDemand],
    eval_scenarios: &ScenarioSet,
) -> CaseStudy {
    let ctx = env.ctx();
    let allocation = te
        .allocate(&ctx, demands)
        .unwrap_or_else(|_| Allocation::new());
    let eval_ctx = TeContext::new(&env.topo, &env.tunnels, eval_scenarios);
    let mut rows = Vec::new();
    for d in demands {
        for (t, f) in allocation.flows_of(d.id) {
            rows.push((d.id.0, env.tunnels.path(t).format(&env.topo), f));
        }
    }
    let availability = demands
        .iter()
        .map(|d| {
            (
                d.id.0,
                d.beta,
                allocation.achieved_availability(&eval_ctx, d),
            )
        })
        .collect();
    CaseStudy {
        algorithm: te.name(),
        rows,
        availability,
    }
}

/// Fig. 2: user1 6 Gbps @ 99 %, user2 12 Gbps @ 90 %, DC1→DC4 on the toy
/// topology, under BATE / TEAVAR / FFC.
pub fn fig2() -> Vec<CaseStudy> {
    let env = Env::new(bate_net::topologies::toy4(), RoutingScheme::Ksp(2), 4);
    let full = ScenarioSet::enumerate(&env.topo, env.topo.num_groups());
    let n = |s: &str| env.topo.find_node(s).unwrap();
    let pair = env.tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
    let demands = vec![
        BaDemand::single(1, pair, 6000.0, 0.99),
        BaDemand::single(2, pair, 12_000.0, 0.90),
    ];
    vec![
        run_case(&env, &Bate, &demands, &full),
        run_case(&env, &Teavar::new(0.999), &demands, &full),
        run_case(&env, &Ffc::new(1), &demands, &full),
    ]
}

/// Table 3 / Fig. 9: demand-1 1000 Mbps DC1→DC3 @ 99.5 %, demand-2
/// 500 Mbps DC1→DC4 @ 99.9 %, demand-3 1500 Mbps DC1→DC5 @ 95 % on the
/// testbed.
pub fn table3() -> Vec<CaseStudy> {
    let env = Env::testbed();
    let full = ScenarioSet::enumerate(&env.topo, env.topo.num_groups());
    let n = |s: &str| env.topo.find_node(s).unwrap();
    let p13 = env.tunnels.pair_index(n("DC1"), n("DC3")).unwrap();
    let p14 = env.tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
    let p15 = env.tunnels.pair_index(n("DC1"), n("DC5")).unwrap();
    let demands = vec![
        BaDemand::single(1, p13, 1000.0, 0.995),
        BaDemand::single(2, p14, 500.0, 0.999),
        BaDemand::single(3, p15, 1500.0, 0.95),
    ];
    vec![
        run_case(&env, &Bate, &demands, &full),
        run_case(&env, &Teavar::new(0.999), &demands, &full),
        run_case(&env, &Ffc::new(1), &demands, &full),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_bate_meets_both_targets() {
        let cases = fig2();
        let bate = &cases[0];
        assert_eq!(bate.algorithm, "BATE");
        for &(id, target, achieved) in &bate.availability {
            assert!(
                achieved >= target - 1e-6,
                "demand {id}: {achieved} < {target}"
            );
        }
        // TEAVAR misses at least one target (§2.2).
        let teavar = &cases[1];
        assert!(teavar
            .availability
            .iter()
            .any(|&(_, target, achieved)| achieved < target));
        // FFC's guaranteed-style split leaves someone short too.
        let ffc = &cases[2];
        assert!(ffc
            .availability
            .iter()
            .any(|&(_, target, achieved)| achieved < target));
    }

    #[test]
    fn fig2_bate_routes_user1_reliably() {
        let cases = fig2();
        let bate = &cases[0];
        // User1's essential flow avoids the 4 % DC1→DC2 link: its rows on
        // the risky path must be non-essential (total on reliable path
        // covers the 6 Gbps demand).
        let reliable: f64 = bate
            .rows
            .iter()
            .filter(|(id, path, _)| *id == 1 && path.contains("DC3"))
            .map(|(_, _, f)| f)
            .sum();
        assert!(reliable >= 6000.0 - 1.0, "user1 on DC1→DC3→DC4: {reliable}");
    }

    #[test]
    fn table3_bate_meets_all_three() {
        let cases = table3();
        let bate = &cases[0];
        for &(id, target, achieved) in &bate.availability {
            assert!(
                achieved >= target - 1e-6,
                "demand {id}: {achieved} < {target}"
            );
        }
        // Demand-2 (99.9 %) must avoid L4 (DC4-DC5), the 1 % link — the
        // paper calls this match out explicitly.
        for (id, path, rate) in &bate.rows {
            if *id == 2 && *rate > 1.0 {
                assert!(
                    !(path.contains("DC4→DC5") || path.contains("DC5→DC4")),
                    "demand-2 must avoid L4: {path}"
                );
            }
        }
    }
}
