//! The seeded differential fuzzing campaign (DESIGN.md §5d, §7).
//!
//! Every instance from the `bate_bench::fuzz` generator fleet is solved
//! by the float kernel AND the exact rational oracle, and the two must
//! agree: identical verdicts (Optimal/Infeasible/Unbounded), objectives
//! within the documented tolerance, and every float solution must pass
//! the exact KKT certificate. Network-model instances additionally run
//! the real scheduling/admission builders across all `SolveMode`s
//! (Full, RowGen, Auto) and require mode-equivalent answers.
//!
//! Default budgets total ≥ 500 instances (420 synthetic LPs + 80
//! synthetic MILPs + the model-based sweeps); `FUZZ_BUDGET=n` rescales
//! every family to `n` cases for nightly runs. Failures print a
//! `family:seed` tag — append it to `fuzz::REGRESSION_SEEDS` so the
//! corpus replays it forever (see the seed-corpus policy in
//! `crates/bench/src/fuzz.rs`).

use bate_bench::fuzz::{
    self, fuzz_budget, gravity_demands, lp_families, milp_families, net_fixtures,
    stale_batch_mates_gadget, FuzzInstance,
};
use bate_core::admission::optimal::{
    admission_milp, maximize_admissions_mode, optimal_feasible_mode,
};
use bate_core::incremental::{DemandDelta, IncrementalScheduler};
use bate_core::recovery::greedy::greedy_recovery;
use bate_core::recovery::milp::{optimal_recovery, recovery_milp};
use bate_core::recovery::RecoveryOutcome;
use bate_core::scheduling::{self, SolveMode, ROWGEN_SEED_SINGLES};
use bate_core::{BaDemand, TeContext};
use bate_net::{topologies, GroupId, ScenarioSet, SrlgSet};
use bate_routing::{RoutingScheme, TunnelSet};
use bate_sim::churn;
use bate_lp::exact::{
    solve_exact, solve_exact_milp, verify_certificate, verify_exact, verify_milp_certificate,
};
use bate_lp::{milp, Relation, SolveError};

/// Documented differential tolerance: relative on the larger magnitude.
const OBJ_TOL: f64 = 1e-6;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= OBJ_TOL * (1.0 + a.abs().max(b.abs()))
}

fn rowgen_mode() -> SolveMode {
    SolveMode::RowGen {
        seed_singles: ROWGEN_SEED_SINGLES,
    }
}

/// Difference one LP instance: float kernel vs exact oracle. Optimal
/// answers must match in objective and both certify; Infeasible and
/// Unbounded verdicts must match exactly.
fn diff_lp(inst: &FuzzInstance) {
    let float = inst.problem.solve_relaxation();
    let exact = solve_exact(&inst.problem);
    match (float, exact) {
        (Ok(f), Ok(e)) => {
            let eo = e.objective.to_f64();
            assert!(
                close(f.objective, eo),
                "{}: float objective {} vs exact {}",
                inst.name,
                f.objective,
                eo
            );
            verify_certificate(&inst.problem, &f)
                .unwrap_or_else(|err| panic!("{}: float certificate rejected: {err}", inst.name));
            verify_exact(&inst.problem, &e)
                .unwrap_or_else(|err| panic!("{}: exact certificate rejected: {err}", inst.name));
        }
        (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
        (Err(SolveError::Unbounded), Err(SolveError::Unbounded)) => {}
        (f, e) => panic!(
            "{}: verdict mismatch: float {:?} vs exact {:?}",
            inst.name,
            f.map(|s| s.objective),
            e.map(|s| s.objective.to_f64())
        ),
    }
}

/// Difference one MILP instance: float branch-and-bound vs exact
/// branch-and-bound, plus the MILP certificate against the exact
/// relaxation root bound.
fn diff_milp(inst: &FuzzInstance) {
    let float = milp::solve(&inst.problem, milp::BnbConfig::default());
    let exact = solve_exact_milp(&inst.problem, 50_000);
    match (float, exact) {
        (Ok(f), Ok(e)) => {
            let eo = e.objective.to_f64();
            assert!(
                close(f.objective, eo),
                "{}: float MILP objective {} vs exact {}",
                inst.name,
                f.objective,
                eo
            );
            let root = solve_exact(&inst.problem)
                .unwrap_or_else(|err| panic!("{}: exact root failed: {err}", inst.name));
            verify_milp_certificate(&inst.problem, &f, Some(root.objective.to_f64()))
                .unwrap_or_else(|err| panic!("{}: MILP certificate rejected: {err}", inst.name));
        }
        (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
        (f, e) => panic!(
            "{}: MILP verdict mismatch: float {:?} vs exact {:?}",
            inst.name,
            f.map(|s| s.objective),
            e.map(|s| s.objective.to_f64())
        ),
    }
}

fn gen_for(family: &str) -> fn(u64) -> FuzzInstance {
    lp_families()
        .into_iter()
        .chain(milp_families())
        .find(|&(name, _)| name == family)
        .unwrap_or_else(|| panic!("unknown regression family {family}"))
        .1
}

/// The checked-in regression corpus replays before any random sweep.
#[test]
fn regression_corpus_replays_clean() {
    for &(family, seed) in fuzz::REGRESSION_SEEDS {
        let inst = gen_for(family)(seed);
        if milp_families().iter().any(|&(name, _)| name == family) {
            diff_milp(&inst);
        } else {
            diff_lp(&inst);
        }
    }
}

#[test]
fn synthetic_lp_differential_campaign() {
    // Default per-family budgets; 420 synthetic LPs total.
    let budgets = [
        ("random_lp", 120),
        ("degenerate_lp", 80),
        ("ill_conditioned_lp", 80),
        ("recovery_shaped_lp", 80),
        ("tie_fan_lp", 60),
        // Real scheduling models over correlated fixtures: each instance
        // runs the exact oracle on an Eq. 4 LP, so the budget is smaller.
        ("srlg_scheduling_lp", 8),
    ];
    for (name, gen) in lp_families() {
        let default = budgets
            .iter()
            .find(|&&(n, _)| n == name)
            .map(|&(_, b)| b)
            .unwrap_or(50);
        for seed in 0..fuzz_budget(default) as u64 {
            diff_lp(&gen(seed));
        }
    }
}

#[test]
fn synthetic_milp_differential_campaign() {
    // Exact branch-and-bound on the Appendix-A admission models is far
    // heavier per instance than on knapsacks, hence the smaller budget.
    let budgets = [("random_milp", 80), ("srlg_admission_milp", 6)];
    for (name, gen) in milp_families() {
        let default = budgets
            .iter()
            .find(|&&(n, _)| n == name)
            .map(|&(_, b)| b)
            .unwrap_or(40);
        for seed in 0..fuzz_budget(default) as u64 {
            diff_milp(&gen(seed));
        }
    }
}

/// The new adversarial family must certify with the *zero-tolerance*
/// rational certificate, not just the float-tolerance one.
#[test]
fn tie_fan_family_certifies_exactly() {
    for seed in 0..fuzz_budget(20) as u64 {
        let inst = fuzz::tie_fan_lp(seed);
        let e = solve_exact(&inst.problem)
            .unwrap_or_else(|err| panic!("{}: exact solve failed: {err}", inst.name));
        verify_exact(&inst.problem, &e)
            .unwrap_or_else(|err| panic!("{}: exact certificate rejected: {err}", inst.name));
        // The optimum is pinned by construction: fan columns cost 1 and
        // the binding cover level is the largest duplicated rhs.
        let f = inst.problem.solve_relaxation().unwrap();
        assert!(close(f.objective, e.objective.to_f64()), "{}", inst.name);
    }
}

/// The PR-4 `stale_batch_mates` gadget, certified exactly: the exact
/// oracle reproduces the true optimum of the full model, and a lazy
/// branch-and-cut drive (the acceptance path PR-4 fixed) produces an
/// incumbent the exact certificate validates against the full model.
#[test]
fn stale_batch_mates_gadget_certifies_exactly() {
    // Small variant: exact branch-and-bound is the ground truth.
    let (full_small, _) = stale_batch_mates_gadget(2, true);
    let e = solve_exact_milp(&full_small.problem, 50_000).unwrap();
    assert!(
        (e.objective.to_f64() - 10.0).abs() < 1e-12,
        "exact optimum of the small gadget must be 10, got {}",
        e.objective.to_f64()
    );
    diff_milp(&full_small);

    // Full-size variant (nj = 8, the PR-4 shape): drive the lazy
    // branch-and-cut exactly as production does, then certify the
    // incumbent against the FULL model (hidden row included) using the
    // exact relaxation root as the bound proof.
    let (full, _) = stale_batch_mates_gadget(8, true);
    let (lazy, hidden) = stale_batch_mates_gadget(8, false);
    let mut p = lazy.problem;
    let mut added = false;
    let sol = milp::solve_lazy(&mut p, milp::BnbConfig::default(), |cand| {
        let mut cuts = Vec::new();
        for (terms, rhs) in &hidden {
            let lhs: f64 = terms.iter().map(|&(v, c)| c * cand.values[v.index()]).sum();
            if !added && lhs > rhs + 1e-9 {
                added = true;
                cuts.push(milp::LazyRow {
                    terms: terms.clone(),
                    relation: Relation::Le,
                    rhs: *rhs,
                });
            }
        }
        cuts
    })
    .unwrap();
    assert!(
        (sol.objective - 10.0).abs() < 1e-9,
        "lazy branch-and-cut must land on the true optimum 10, got {}",
        sol.objective
    );
    let root = solve_exact(&full.problem).unwrap();
    verify_milp_certificate(&full.problem, &sol, Some(root.objective.to_f64()))
        .unwrap_or_else(|err| panic!("gadget incumbent rejected by exact certificate: {err}"));
}

/// Scheduling LPs from gravity traffic across all three SolveModes:
/// mode-equivalent objectives, float certificates on every instance,
/// exact re-solves on the toy4 fixture.
#[test]
fn scheduling_instances_agree_across_modes_and_certify() {
    let fixtures = net_fixtures();
    for (fi, fix) in fixtures.iter().enumerate() {
        let ctx = TeContext::new(&fix.topo, &fix.tunnels, &fix.scenarios);
        let caps: Vec<f64> = fix.topo.links().map(|(_, l)| l.capacity).collect();
        let mean_total = if fi == 0 { 12_000.0 } else { 2000.0 };
        for seed in 0..fuzz_budget(6) as u64 {
            let demands = gravity_demands(fix, 4, mean_total, seed + 100);
            let tag = format!("sched[{}]:{}", fix.topo.name(), seed);

            let modes = [SolveMode::Full, rowgen_mode(), SolveMode::Auto];
            let answers: Vec<_> = modes
                .iter()
                .map(|&m| scheduling::schedule_mode(&ctx, &demands, m))
                .collect();
            match &answers[0] {
                Ok(f) => {
                    for a in &answers[1..] {
                        let a = a.as_ref().unwrap_or_else(|e| {
                            panic!("{tag}: mode verdict mismatch: Full ok, other {e}")
                        });
                        assert!(
                            close(f.total_bandwidth, a.total_bandwidth),
                            "{tag}: mode objective mismatch {} vs {}",
                            f.total_bandwidth,
                            a.total_bandwidth
                        );
                    }
                }
                Err(e) => {
                    for a in &answers[1..] {
                        assert_eq!(
                            a.as_ref().err(),
                            Some(e),
                            "{tag}: mode verdict mismatch on error path"
                        );
                    }
                }
            }

            let p = scheduling::scheduling_lp(&ctx, &demands, &caps).unwrap();
            match p.solve() {
                Ok(sol) => {
                    verify_certificate(&p, &sol)
                        .unwrap_or_else(|err| panic!("{tag}: certificate rejected: {err}"));
                    if fi == 0 {
                        let e = solve_exact(&p).unwrap();
                        assert!(
                            close(sol.objective, e.objective.to_f64()),
                            "{tag}: float {} vs exact {}",
                            sol.objective,
                            e.objective.to_f64()
                        );
                        verify_exact(&p, &e).unwrap();
                    }
                }
                Err(SolveError::Infeasible) => {
                    if fi == 0 {
                        assert_eq!(
                            solve_exact(&p).err(),
                            Some(SolveError::Infeasible),
                            "{tag}: float infeasible but exact disagrees"
                        );
                    }
                }
                Err(e) => panic!("{tag}: unexpected solve error {e}"),
            }
        }
    }
}

/// Random churn sequences through the incremental warm-start scheduler
/// (DESIGN.md §5e): every round's warm re-solve must match a cold batch
/// re-solve of the same live pool — objective within tolerance and
/// identical per-demand hard-availability verdicts — and every warm
/// master optimum must pass the exact rational KKT certificate.
#[test]
fn churn_sequences_match_cold_and_certify() {
    let fixtures = net_fixtures();
    let fix = &fixtures[0]; // toy4: small enough to certify every round
    let ctx = TeContext::new(&fix.topo, &fix.tunnels, &fix.scenarios);
    let pairs: Vec<usize> = (0..fix.tunnels.num_pairs())
        .filter(|&p| !fix.tunnels.tunnels(p).is_empty())
        .take(4)
        .collect();
    for seed in 0..fuzz_budget(4) as u64 {
        let mut cfg = churn::ChurnConfig::steady(pairs.clone(), 6, 5, 900 + seed);
        // Sweep the paper's 1-5% churn regime across seeds (the pool is
        // tiny, so every round still churns at least one demand).
        cfg.churn_fraction = 0.01 + 0.01 * (seed % 5) as f64;
        let workload = churn::generate(&cfg);
        let tag = format!("churn:{seed}");

        let mut sched = IncrementalScheduler::new(&ctx);
        let mut pool: Vec<BaDemand> = Vec::new();
        let fill: Vec<DemandDelta> = workload
            .initial
            .iter()
            .map(|d| DemandDelta::Add(d.clone()))
            .collect();
        for (round, batch) in std::iter::once(&fill)
            .chain(workload.rounds.iter())
            .enumerate()
        {
            for delta in batch {
                match delta {
                    DemandDelta::Add(d) => pool.push(d.clone()),
                    DemandDelta::Remove(id) => pool.retain(|d| d.id != *id),
                    DemandDelta::Resize { id, factor } => {
                        for d in pool.iter_mut().filter(|d| d.id == *id) {
                            for (_, b) in &mut d.bandwidth {
                                *b *= factor;
                            }
                            d.price *= factor;
                        }
                    }
                }
            }
            let warm = sched
                .apply(&ctx, batch)
                .unwrap_or_else(|e| panic!("{tag} round {round}: warm apply failed: {e}"));
            let cold = scheduling::schedule_mode(&ctx, &pool, rowgen_mode())
                .unwrap_or_else(|e| panic!("{tag} round {round}: cold solve failed: {e}"));
            assert!(
                close(warm.total_bandwidth, cold.total_bandwidth),
                "{tag} round {round}: warm objective {} vs cold {}",
                warm.total_bandwidth,
                cold.total_bandwidth
            );
            // Identical per-demand hard-availability verdicts.
            for d in &pool {
                assert_eq!(
                    warm.allocation.meets_target(&ctx, d),
                    cold.allocation.meets_target(&ctx, d),
                    "{tag} round {round}: BA verdict differs for demand {:?}",
                    d.id
                );
            }
            // The warm master optimum certifies against the exact oracle.
            let sol = sched.last_solution().unwrap();
            verify_certificate(sched.problem(), sol).unwrap_or_else(|err| {
                panic!("{tag} round {round}: warm certificate rejected: {err}")
            });
        }
        assert!(
            sched.stats().warm_rounds > 0,
            "{tag}: churn rounds never warm-started: {:?}",
            sched.stats()
        );
    }
}

/// The acceptance-criterion divergence case, certified end to end: a
/// demand the independent-marginal model admits (Optimal scheduling LP,
/// float certificate AND exact rational certificate) that the correlated
/// model rejects (Infeasible), with the exact oracle confirming the
/// rejection is structural, not a float artifact.
#[test]
fn correlated_divergence_is_certified_by_the_exact_oracle() {
    let topo = topologies::toy4();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
    let mut srlgs = SrlgSet::new(&topo);
    // One conduit over e2 and e4: the only two disjoint DC1→DC4 paths
    // share a 1% fiber cut their marginals don't reveal.
    srlgs.add("fiber-cut", 0.01, &[GroupId(1), GroupId(3)]);
    let n = |s: &str| topo.find_node(s).unwrap();
    let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
    let probe = vec![BaDemand::single(1, pair, 1000.0, 0.999)];
    let caps: Vec<f64> = topo.links().map(|(_, l)| l.capacity).collect();

    // Correlation-blind observer: admits, and both certificates agree.
    let marginal = srlgs.marginal_topology(&topo);
    let indep = ScenarioSet::enumerate(&marginal, 2);
    let ctx_indep = TeContext::new(&marginal, &tunnels, &indep);
    let p_indep = scheduling::scheduling_lp(&ctx_indep, &probe, &caps).unwrap();
    let sol = p_indep
        .solve()
        .expect("independent marginals must admit the 99.9% probe");
    verify_certificate(&p_indep, &sol).expect("float certificate on the independent model");
    let e = solve_exact(&p_indep).expect("exact oracle agrees the independent model is feasible");
    assert!(
        close(sol.objective, e.objective.to_f64()),
        "independent model: float {} vs exact {}",
        sol.objective,
        e.objective.to_f64()
    );
    verify_exact(&p_indep, &e).expect("exact certificate on the independent model");

    // Joint model: the same demand is structurally unservable.
    let corr = srlgs.enumerate(&topo, 2);
    let ctx_corr = TeContext::new(&topo, &tunnels, &corr);
    let p_corr = scheduling::scheduling_lp(&ctx_corr, &probe, &caps).unwrap();
    assert_eq!(
        p_corr.solve().err(),
        Some(SolveError::Infeasible),
        "the correlated model must reject the probe"
    );
    assert_eq!(
        solve_exact(&p_corr).err(),
        Some(SolveError::Infeasible),
        "exact oracle must confirm the correlated rejection"
    );
}

/// Recovery-storm models certified against the exact oracle: for seeded
/// churn pools hit by the toy4 fiber cut, Algorithm 2 must stay within
/// the MILP optimum, the MILP optimum within the no-failure baseline,
/// and the Eq. 8–12 model itself must pass the exact MILP differential
/// (float branch-and-bound objective = exact rational objective, MILP
/// certificate against the exact relaxation root).
#[test]
fn storm_recovery_milps_certify_against_the_exact_oracle() {
    let topo = topologies::toy4();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
    let mut srlgs = SrlgSet::new(&topo);
    srlgs.add("storm-region", 0.01, &[GroupId(1), GroupId(3)]);
    let scenarios = srlgs.enumerate(&topo, 2);
    let ctx = TeContext::new(&topo, &tunnels, &scenarios);
    let cut = srlgs.scenario(&topo, &[GroupId(1), GroupId(3)]);
    let pairs: Vec<usize> = (0..tunnels.num_pairs())
        .filter(|&p| !tunnels.tunnels(p).is_empty())
        .take(4)
        .collect();

    for seed in 0..fuzz_budget(3) as u64 {
        let mut cfg = churn::ChurnConfig::steady(pairs.clone(), 6, 0, 700 + seed);
        cfg.refund_ratio = 0.25; // forfeits must cost profit
        let pool = churn::generate(&cfg).initial;
        let tag = format!("storm_recovery:{seed}");

        let greedy = greedy_recovery(&ctx, &pool, &cut);
        let optimal = optimal_recovery(&ctx, &pool, &cut)
            .unwrap_or_else(|e| panic!("{tag}: recovery MILP failed: {e}"));
        let baseline = RecoveryOutcome::baseline_profit(&pool);
        assert!(
            greedy.profit <= optimal.profit + OBJ_TOL * baseline,
            "{tag}: greedy profit {} exceeds MILP optimum {}",
            greedy.profit,
            optimal.profit
        );
        assert!(
            optimal.profit <= baseline + OBJ_TOL * baseline,
            "{tag}: recovery profit {} exceeds baseline {}",
            optimal.profit,
            baseline
        );

        let p = recovery_milp(&ctx, &pool, &cut);
        let sol = milp::solve(&p, milp::BnbConfig::default())
            .unwrap_or_else(|e| panic!("{tag}: float MILP failed: {e}"));
        let exact = solve_exact_milp(&p, 50_000)
            .unwrap_or_else(|e| panic!("{tag}: exact MILP failed: {e}"));
        assert!(
            close(sol.objective, exact.objective.to_f64()),
            "{tag}: float MILP objective {} vs exact {}",
            sol.objective,
            exact.objective.to_f64()
        );
        let root = solve_exact(&p).unwrap();
        verify_milp_certificate(&p, &sol, Some(root.objective.to_f64()))
            .unwrap_or_else(|err| panic!("{tag}: MILP certificate rejected: {err}"));

        // The model objective is the refund saved (Σ g μ over satisfied
        // demands): profit = baseline − Σ g μ + objective.
        let refundable: f64 = pool.iter().map(|d| d.price * d.refund_ratio).sum();
        assert!(
            close(optimal.profit, baseline - refundable + exact.objective.to_f64()),
            "{tag}: profit accounting {} vs certified {}",
            optimal.profit,
            baseline - refundable + exact.objective.to_f64()
        );
    }
}

/// Admission MILPs across modes: identical accepted counts Full vs
/// RowGen vs Auto, matching feasibility verdicts, and the exact MILP
/// certificate (with the exact relaxation root as bound proof) on the
/// Appendix-A model of every instance.
#[test]
fn admission_instances_agree_across_modes_and_certify() {
    let fixtures = net_fixtures();
    for (fi, fix) in fixtures.iter().enumerate() {
        let ctx = TeContext::new(&fix.topo, &fix.tunnels, &fix.scenarios);
        // Oversubscribe so some instances force rejections.
        let mean_total = if fi == 0 { 40_000.0 } else { 6000.0 };
        for seed in 0..fuzz_budget(4) as u64 {
            let demands = gravity_demands(fix, 4, mean_total, seed + 200);
            let tag = format!("adm[{}]:{}", fix.topo.name(), seed);

            let ff = optimal_feasible_mode(&ctx, &demands, SolveMode::Full).unwrap();
            let fl = optimal_feasible_mode(&ctx, &demands, rowgen_mode()).unwrap();
            assert_eq!(ff, fl, "{tag}: feasibility verdict differs across modes");

            let mf = maximize_admissions_mode(&ctx, &demands, SolveMode::Full).unwrap();
            let ml = maximize_admissions_mode(&ctx, &demands, rowgen_mode()).unwrap();
            let ma = maximize_admissions_mode(&ctx, &demands, SolveMode::Auto).unwrap();
            let count = |a: &[bool]| a.iter().filter(|&&x| x).count();
            assert_eq!(
                count(&mf.accepted),
                count(&ml.accepted),
                "{tag}: admission count differs Full vs RowGen"
            );
            assert_eq!(
                count(&mf.accepted),
                count(&ma.accepted),
                "{tag}: admission count differs Full vs Auto"
            );

            let p = admission_milp(&ctx, &demands, false).unwrap();
            match p.solve() {
                Ok(sol) => {
                    let root = solve_exact(&p).unwrap();
                    verify_milp_certificate(&p, &sol, Some(root.objective.to_f64()))
                        .unwrap_or_else(|err| panic!("{tag}: MILP certificate rejected: {err}"));
                    assert!(
                        close(sol.objective, count(&mf.accepted) as f64),
                        "{tag}: MILP objective {} vs admitted count {}",
                        sol.objective,
                        count(&mf.accepted)
                    );
                }
                Err(SolveError::Infeasible) => {}
                Err(e) => panic!("{tag}: unexpected admission solve error {e}"),
            }
        }
    }
}
