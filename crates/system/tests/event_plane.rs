//! Event-plane liveness under adversarial peers: a connection that
//! dribbles one byte at a time or stalls mid-frame must neither block
//! other connections (the poller keeps every other state machine
//! progressing) nor leak — the frame-assembly deadline reaps it.

use bate_core::clock::SystemClock;
use bate_net::topologies;
use bate_routing::RoutingScheme;
use bate_system::client::DemandRequest;
use bate_system::proto::Message;
use bate_system::wire::encode_frame;
use bate_system::{Client, Controller, ControllerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Controller with a short mid-frame deadline so reaping is observable
/// in test time.
fn start_controller(idle_timeout: Duration) -> Controller {
    Controller::start(ControllerConfig {
        topo: topologies::testbed6(),
        routing: RoutingScheme::default_ksp4(),
        max_failures: 2,
        schedule_interval: None,
        clock: SystemClock::shared(),
        legacy_duplicate_handling: false,
        idle_timeout: Some(idle_timeout),
    })
    .unwrap()
}

/// Wait until `pred` holds or the deadline passes; returns whether it
/// held.
fn poll_until(timeout: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    pred()
}

/// Whether the peer has closed `stream` (read returns 0 or a reset).
fn peer_closed(stream: &mut TcpStream) -> bool {
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let mut buf = [0u8; 64];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return true,
            Ok(_) => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return false
            }
            Err(_) => return true,
        }
    }
}

#[test]
fn dribbler_does_not_block_other_connections_and_is_reaped() {
    let controller = start_controller(Duration::from_millis(400));
    let reaped_before = Controller::reaped_total();

    // The dribbler: a valid Ping frame delivered one byte per 25 ms —
    // each byte is progress, so a naive per-read timeout would never
    // fire; the unrefreshed frame deadline still catches it.
    let mut dribbler = TcpStream::connect(controller.addr()).unwrap();
    dribbler.set_nodelay(true).unwrap();
    let frame = encode_frame(&Message::Ping { token: 99 }).unwrap();
    let drib_frame = frame.clone();
    let mut drib_clone = dribbler.try_clone().unwrap();
    let feeder = std::thread::spawn(move || {
        for b in drib_frame {
            if drib_clone.write_all(&[b]).is_err() {
                break; // reaped mid-dribble: expected
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    });

    // Give the dribbler a head start into its frame, then verify the
    // plane still serves a well-behaved client promptly.
    assert!(poll_until(Duration::from_secs(2), || {
        controller
            .connection_progress()
            .iter()
            .any(|(_, p)| p.mid_frame && p.bytes_in > 0)
    }));
    let mut client = Client::connect(controller.addr()).unwrap();
    let t0 = Instant::now();
    assert!(client
        .submit(&DemandRequest::new(1, "DC1", "DC3", 100.0, 0.95))
        .unwrap());
    assert!(
        t0.elapsed() < Duration::from_secs(1),
        "a mid-frame dribbler must not delay admission for other connections"
    );

    // Progress accounting: the dribbler's connection shows partial-frame
    // bytes but zero completed frames; the client's shows completed
    // frames. (Snapshots publish at the end of each poll wakeup, so the
    // one right after the reply may lag a beat — poll for it.)
    assert!(
        poll_until(Duration::from_secs(2), || {
            let progress = controller.connection_progress();
            progress
                .iter()
                .any(|(_, p)| p.mid_frame && p.frames_in == 0 && p.bytes_in > 0)
                && progress.iter().any(|(_, p)| p.frames_in > 0)
        }),
        "dribbler/client progress not visible: {:?}",
        controller.connection_progress()
    );

    // The deadline is armed at the first partial byte and deliberately
    // not refreshed per byte: the dribbler is reaped while still
    // dribbling.
    assert!(
        poll_until(Duration::from_secs(3), || Controller::reaped_total()
            > reaped_before),
        "dribbler was never reaped"
    );
    assert!(peer_closed(&mut dribbler), "reaped socket must be closed");
    feeder.join().unwrap();

    // The well-behaved client is unaffected by the reap.
    assert!(client
        .submit(&DemandRequest::new(2, "DC2", "DC6", 50.0, 0.9))
        .unwrap());
    assert_eq!(controller.admitted_count(), 2);
}

#[test]
fn mid_frame_staller_is_reaped_but_idle_connections_are_not() {
    let controller = start_controller(Duration::from_millis(300));
    let reaped_before = Controller::reaped_total();

    // The staller: half a frame, then silence.
    let mut staller = TcpStream::connect(controller.addr()).unwrap();
    staller.set_nodelay(true).unwrap();
    let frame = encode_frame(&Message::Ping { token: 5 }).unwrap();
    staller.write_all(&frame[..frame.len() / 2]).unwrap();

    // An idle connection: connected, sent one complete request, now
    // quiet between frames. Must NOT be reaped — brokers legitimately
    // sit idle.
    let mut idle = Client::connect(controller.addr()).unwrap();
    assert!(idle.ping().unwrap() < Duration::from_secs(1));

    assert!(
        poll_until(Duration::from_secs(3), || Controller::reaped_total()
            > reaped_before),
        "mid-frame staller was never reaped"
    );
    assert!(peer_closed(&mut staller));

    // Well past the idle timeout, the between-frames connection still
    // answers.
    std::thread::sleep(Duration::from_millis(400));
    assert!(idle.ping().unwrap() < Duration::from_secs(1));
    assert_eq!(Controller::reaped_total(), reaped_before + 1);
}
