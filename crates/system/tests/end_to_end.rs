//! End-to-end control-plane tests over real TCP sockets: submit → admit →
//! push → enforce → fail → recover.
//!
//! Deflaked: no blind wall-clock sleeps. Registration is awaited with
//! [`Controller::wait_for_brokers`], installs with the broker's
//! condvar-notified `wait_for_*` helpers, and every listener binds an
//! ephemeral port.

use bate_core::clock::SystemClock;
use bate_net::topologies;
use bate_routing::RoutingScheme;
use bate_system::client::DemandRequest;
use bate_system::{Broker, Client, Controller, ControllerConfig};
use std::time::Duration;

fn start_controller() -> Controller {
    Controller::start(ControllerConfig::manual(
        topologies::testbed6(),
        RoutingScheme::default_ksp4(),
        2,
    ))
    .expect("controller start")
}

#[test]
fn submit_admit_and_install() {
    let controller = start_controller();
    let broker = Broker::connect(controller.addr(), "DC1").unwrap();
    assert!(controller.wait_for_brokers(1, Duration::from_secs(2)));

    let mut client = Client::connect(controller.addr()).unwrap();
    let req = DemandRequest::new(1, "DC1", "DC3", 200.0, 0.95);
    assert!(client.submit(&req).unwrap(), "200 Mbps @ 95% must fit");
    assert_eq!(controller.admitted_count(), 1);

    // The broker receives the allocation and programs its enforcer.
    assert!(broker.wait_for_demand(1, Duration::from_secs(2)));
    let rate = broker.installed_rate(1);
    assert!(rate >= 200.0 - 1e-6, "installed rate {rate}");
    assert!(broker.enforcer().demand_rate(1) >= 200.0 - 1e-6);
}

#[test]
fn rejection_of_oversized_demand() {
    let controller = start_controller();
    let mut client = Client::connect(controller.addr()).unwrap();
    // DC1's egress cut is 3 Gbps; 10 Gbps can never fit.
    let req = DemandRequest::new(1, "DC1", "DC3", 10_000.0, 0.5);
    assert!(!client.submit(&req).unwrap());
    assert_eq!(controller.admitted_count(), 0);
    // Unknown node names are rejected, not crashed on.
    let bad = DemandRequest::new(2, "DC1", "Nowhere", 10.0, 0.5);
    assert!(!client.submit(&bad).unwrap());
}

/// A resubmitted id is an idempotent replay, not a refusal: the retried
/// SubmitDemand gets the original verdict and the demand is counted once.
/// (The pre-hardening controller refused the retry — see the
/// `legacy_duplicate_handling_refuses_retries` regression test.)
#[test]
fn duplicate_ids_replay_the_original_verdict() {
    let controller = start_controller();
    let mut client = Client::connect(controller.addr()).unwrap();
    let req = DemandRequest::new(7, "DC1", "DC4", 100.0, 0.9);
    assert!(client.submit(&req).unwrap());
    assert!(
        client.submit(&req).unwrap(),
        "a retried submit must replay the admitted verdict"
    );
    assert_eq!(controller.admitted_count(), 1, "never double-counted");

    // Same id with *different* content is an id collision, not a retry.
    let collision = DemandRequest::new(7, "DC1", "DC4", 250.0, 0.9);
    assert!(!client.submit(&collision).unwrap());
    assert_eq!(controller.admitted_count(), 1);
}

/// Regression demonstration of the pre-hardening bug: with
/// `legacy_duplicate_handling`, a client whose AdmissionReply was lost
/// retries and is told `false` for a demand the controller admitted.
#[test]
fn legacy_duplicate_handling_refuses_retries() {
    let controller = Controller::start(ControllerConfig {
        topo: topologies::testbed6(),
        routing: RoutingScheme::default_ksp4(),
        max_failures: 2,
        schedule_interval: None,
        clock: SystemClock::shared(),
        legacy_duplicate_handling: true,
        idle_timeout: Some(Duration::from_secs(30)),
    })
    .unwrap();
    let mut client = Client::connect(controller.addr()).unwrap();
    let req = DemandRequest::new(7, "DC1", "DC4", 100.0, 0.9);
    assert!(client.submit(&req).unwrap());
    // The old code path: retry refused even though the demand is live.
    assert!(!client.submit(&req).unwrap());
    assert_eq!(controller.admitted_count(), 1);
}

#[test]
fn withdraw_frees_capacity() {
    let controller = start_controller();
    let broker = Broker::connect(controller.addr(), "DC1").unwrap();
    assert!(controller.wait_for_brokers(1, Duration::from_secs(2)));
    let mut client = Client::connect(controller.addr()).unwrap();

    // The DC3-ingress cut (L2 + L3) caps DC1→DC3 at 2000 Mbps. Fill most
    // of it, check a second large demand is rejected, then withdraw the
    // first and watch the second fit.
    assert!(client
        .submit(&DemandRequest::new(1, "DC1", "DC3", 1200.0, 0.0))
        .unwrap());
    assert!(broker.wait_for_demand(1, Duration::from_secs(2)));
    assert!(!client
        .submit(&DemandRequest::new(2, "DC1", "DC3", 1200.0, 0.0))
        .unwrap());
    // Withdraw is acknowledged, and idempotent under retries.
    client.withdraw(1).unwrap();
    client.withdraw(1).unwrap();
    assert!(broker.wait_for_rate(1, Duration::from_secs(2), |r| r == 0.0));
    assert!(client
        .submit(&DemandRequest::new(2, "DC1", "DC3", 1200.0, 0.0))
        .unwrap());
    // A stale resubmit of the withdrawn id must not resurrect it.
    assert!(!client
        .submit(&DemandRequest::new(1, "DC1", "DC3", 1200.0, 0.0))
        .unwrap());
    assert_eq!(controller.admitted_count(), 1);
}

#[test]
fn link_failure_triggers_reroute() {
    let controller = start_controller();
    let broker = Broker::connect(controller.addr(), "DC1").unwrap();
    assert!(controller.wait_for_brokers(1, Duration::from_secs(2)));
    let mut client = Client::connect(controller.addr()).unwrap();

    // A demand on DC1→DC4 whose shortest tunnel is the direct L8 link.
    assert!(client
        .submit(&DemandRequest::new(1, "DC1", "DC4", 500.0, 0.9))
        .unwrap());
    assert!(broker.wait_for_demand(1, Duration::from_secs(2)));

    // Find the fate group of the direct DC1-DC4 link and fail it.
    let topo = topologies::testbed6();
    let n = |s: &str| topo.find_node(s).unwrap();
    let l8 = topo.find_link(n("DC1"), n("DC4")).unwrap();
    let group = topo.link(l8).group.index() as u32;
    broker.report_link(group, false).unwrap();

    // The controller reroutes: a full-rate allocation arrives that does not
    // use the failed direct tunnel. The direct path is tunnel 0 of the
    // pair (it is the unique 1-hop path, so KSP puts it first).
    let tunnels = bate_routing::TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
    let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap() as u32;
    let ok = broker.wait_for_entries(1, Duration::from_secs(2), |entries| {
        let uses_direct = entries
            .iter()
            .any(|e| e.pair == pair && e.tunnel == 0 && e.rate > 1e-6);
        let total: f64 = entries.iter().map(|e| e.rate).sum();
        !uses_direct && total >= 500.0 - 1e-6
    });
    assert!(ok, "reroute must avoid the failed direct tunnel");

    // Repair: the controller reschedules and the demand stays whole.
    broker.report_link(group, true).unwrap();
    assert!(broker.wait_for_rate(1, Duration::from_secs(2), |r| r >= 500.0 - 1e-6));
}

/// The `StatsQuery` RPC (what `batectl stats` prints): the controller
/// returns its registry as Prometheus text exposition, with the solver,
/// admission, and wire metric families present and parseable.
#[test]
fn stats_query_returns_prometheus_exposition() {
    let controller = start_controller();
    let mut client = Client::connect(controller.addr()).unwrap();
    // Drive at least one admission + solve so the families exist.
    assert!(client
        .submit(&DemandRequest::new(1, "DC1", "DC3", 200.0, 0.95))
        .unwrap());

    let text = client.stats().unwrap();
    for family in [
        "bate_solver_solves_total",
        "bate_admission_checks_total",
        "bate_wire_frames_received_total",
        "bate_ctrl_submits_total",
    ] {
        assert!(text.contains(family), "missing family {family} in:\n{text}");
    }
    // Parseable: every non-comment line is `name[{labels}] value` with a
    // numeric value; TYPE comments name a known metric kind and are
    // immediately preceded by the family's HELP comment.
    let mut last_help: Option<String> = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or("");
            assert!(!name.is_empty(), "HELP line without a metric name: {line}");
            last_help = Some(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "bad TYPE line: {line}"
            );
            assert_eq!(
                last_help.as_deref(),
                Some(name),
                "TYPE line not preceded by its HELP line: {line}"
            );
            continue;
        }
        let (_, value) = line.rsplit_once(' ').expect("sample line has a value");
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf",
            "unparseable sample value in line: {line}"
        );
    }

    // The idempotent-replay counter is fed by the retry path.
    let req = DemandRequest::new(1, "DC1", "DC3", 200.0, 0.95);
    assert!(client.submit(&req).unwrap());
    let text = client.stats().unwrap();
    assert!(
        text.contains("bate_ctrl_idempotent_replay_hits_total"),
        "replay hit family missing after a resubmit:\n{text}"
    );
}

// The `*_families_render_at_zero` snapshot-golden tests live in
// `tests/stats_goldens.rs`: they assert exact zero renderings from the
// process-global registry, so they need a test binary where no other
// test (e.g. a multi-client run whose batch triggers a warm solve) can
// bump those counters first.

#[test]
fn ping_roundtrip() {
    let controller = start_controller();
    let mut client = Client::connect(controller.addr()).unwrap();
    let rtt = client.ping().unwrap();
    assert!(rtt < Duration::from_secs(1));
}

#[test]
fn many_clients_concurrently() {
    let controller = start_controller();
    let addr = controller.addr();
    let handles: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let req = DemandRequest::new(100 + i, "DC2", "DC6", 50.0, 0.9);
                client.submit(&req).unwrap()
            })
        })
        .collect();
    let admitted = handles
        .into_iter()
        .map(|h| h.join().unwrap())
        .filter(|&a| a)
        .count();
    // 8 × 50 Mbps easily fits DC2→DC6.
    assert_eq!(admitted, 8);
    assert_eq!(controller.admitted_count(), 8);
}

#[test]
fn periodic_scheduler_keeps_allocations_fresh() {
    let controller = Controller::start(ControllerConfig {
        topo: topologies::testbed6(),
        routing: RoutingScheme::default_ksp4(),
        max_failures: 2,
        schedule_interval: Some(Duration::from_millis(40)),
        clock: SystemClock::shared(),
        legacy_duplicate_handling: false,
        idle_timeout: Some(Duration::from_secs(30)),
    })
    .unwrap();
    let broker = Broker::connect(controller.addr(), "DC1").unwrap();
    assert!(controller.wait_for_brokers(1, Duration::from_secs(2)));
    let mut client = Client::connect(controller.addr()).unwrap();
    assert!(client
        .submit(&DemandRequest::new(1, "DC1", "DC3", 300.0, 0.99))
        .unwrap());
    // The demand must be (and stay) fully allocated across automatic
    // rounds, which re-push allocations to the broker.
    assert!(broker.wait_for_rate(1, Duration::from_secs(2), |r| r >= 300.0 - 1e-6));
    // Wait until at least one automatic round has re-pushed (the install
    // arrives again) — condvar-notified, no blind sleep: the wait returns
    // as soon as a fresh install lands at full rate.
    assert!(broker.wait_for_rate(1, Duration::from_secs(2), |r| r >= 300.0 - 1e-6));
    assert_eq!(controller.admitted_count(), 1);
}
