//! Batched-admission equivalence: a pipelined batch of N submissions
//! through the event-driven controller must produce *exactly* the same
//! verdicts as submitting the same demands one at a time against a cold
//! controller — and the post-batch allocation (the one warm solve
//! amortized across the batch) must achieve the certified exact-LP
//! objective for the admitted set.
//!
//! This is the system-level pin of `bate_core::admission::admit_batch`'s
//! by-construction claim: batching changes *when* the pool is
//! re-optimized, never *what* is admitted.

use bate_core::scheduling::schedule;
use bate_core::{BaDemand, TeContext};
use bate_net::{topologies, ScenarioSet};
use bate_routing::{RoutingScheme, TunnelSet};
use bate_system::client::DemandRequest;
use bate_system::{Client, Controller, ControllerConfig, PipelinedClient};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn start_controller() -> Controller {
    Controller::start(ControllerConfig::manual(
        topologies::testbed6(),
        RoutingScheme::default_ksp4(),
        2,
    ))
    .expect("controller start")
}

/// A seeded workload over testbed6: mixed pairs, sizes, and targets,
/// with a few oversized entries that must reject, so the verdict vector
/// is non-trivial in both directions.
fn seeded_demands(seed: u64, n: usize, id_base: u64) -> Vec<DemandRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dcs = ["DC1", "DC2", "DC3", "DC4", "DC5", "DC6"];
    (0..n)
        .map(|i| {
            let src = dcs[rng.gen_range(0..dcs.len())];
            let mut dst = dcs[rng.gen_range(0..dcs.len())];
            while dst == src {
                dst = dcs[rng.gen_range(0..dcs.len())];
            }
            // Every 5th demand is far beyond any cut capacity: a
            // guaranteed reject mixed into the batch.
            let bandwidth = if i % 5 == 4 {
                20_000.0
            } else {
                rng.gen_range(30.0..250.0)
            };
            let beta = [0.9, 0.95, 0.99][rng.gen_range(0..3usize)];
            DemandRequest::new(id_base + i as u64, src, dst, bandwidth, beta)
        })
        .collect()
}

#[test]
fn batched_equals_sequential_with_certified_objective() {
    let n = 12;
    // Distinct id ranges so the two controllers' trace roots (derived
    // from demand ids) never collide in the shared flight ring.
    let batch_reqs = seeded_demands(0xBA7E, n, 1000);
    let seq_reqs: Vec<DemandRequest> = batch_reqs
        .iter()
        .map(|r| DemandRequest {
            id: r.id + 1000,
            ..r.clone()
        })
        .collect();

    // Batched path: all N frames queued locally and flushed in one
    // write, so they land in one controller wakeup → one admission
    // batch → one warm solve.
    let ctrl_batch = start_controller();
    let mut pipelined = PipelinedClient::connect(ctrl_batch.addr()).unwrap();
    for req in &batch_reqs {
        pipelined.queue_submit(req).unwrap();
    }
    pipelined.flush().unwrap();
    let mut batch_verdicts = Vec::with_capacity(n);
    for req in &batch_reqs {
        let (id, admitted) = pipelined.recv_verdict().unwrap();
        assert_eq!(id, req.id, "replies must arrive in submission order");
        batch_verdicts.push(admitted);
    }

    // Sequential path: a cold controller, one round-trip per demand.
    let ctrl_seq = start_controller();
    let mut client = Client::connect(ctrl_seq.addr()).unwrap();
    let seq_verdicts: Vec<bool> = seq_reqs
        .iter()
        .map(|req| client.submit(req).unwrap())
        .collect();

    assert_eq!(
        batch_verdicts, seq_verdicts,
        "batched admission diverged from the sequential pipeline"
    );
    let admitted: Vec<&DemandRequest> = batch_reqs
        .iter()
        .zip(&batch_verdicts)
        .filter(|(_, &a)| a)
        .map(|(r, _)| r)
        .collect();
    assert!(
        admitted.len() > 1 && admitted.len() < n,
        "seeded workload must mix admits and rejects (got {}/{n})",
        admitted.len()
    );
    assert_eq!(ctrl_batch.admitted_count(), admitted.len());
    assert_eq!(ctrl_seq.admitted_count(), admitted.len());

    // Exact oracle: the certified LP objective over the admitted set.
    let topo = topologies::testbed6();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
    let scenarios = ScenarioSet::enumerate(&topo, 2);
    let ctx = TeContext::new(&topo, &tunnels, &scenarios);
    let pool: Vec<BaDemand> = admitted
        .iter()
        .map(|r| {
            let s = topo.find_node(&r.src).unwrap();
            let d = topo.find_node(&r.dst).unwrap();
            let pair = tunnels.pair_index(s, d).unwrap();
            BaDemand::single(r.id, pair, r.bandwidth, r.beta)
        })
        .collect();
    let oracle = schedule(&ctx, &pool).expect("oracle solve");

    // The batch controller's post-batch allocation is its warm solve's;
    // its total must match the certified objective (the warm path is
    // KKT-certified against the exact LP, falling back cold otherwise).
    let batch_total: f64 = admitted.iter().map(|r| ctrl_batch.allocated_rate(r.id)).sum();
    assert!(
        (batch_total - oracle.total_bandwidth).abs() < 1e-6 * oracle.total_bandwidth.max(1.0),
        "batched allocation total {batch_total} != certified oracle objective {}",
        oracle.total_bandwidth
    );

    // After one scheduling round, the sequential controller lands on the
    // same certified objective — batching and sequencing converge.
    ctrl_seq.run_schedule_round();
    let seq_total: f64 = admitted
        .iter()
        .map(|r| ctrl_seq.allocated_rate(r.id + 1000))
        .sum();
    assert!(
        (seq_total - oracle.total_bandwidth).abs() < 1e-6 * oracle.total_bandwidth.max(1.0),
        "sequential round total {seq_total} != certified oracle objective {}",
        oracle.total_bandwidth
    );

    // The batch path really ran: the in-process batch-size histogram saw
    // the multi-submit batch (sequential submits only ever record 1s).
    let max_batch = bate_obs::Registry::global()
        .histogram("bate_admission_batch_size")
        .max();
    assert!(
        max_batch >= 2.0,
        "expected a multi-submit batch to be recorded, max batch size {max_batch}"
    );
}

/// Duplicated frames *inside* one batch replay the verdict their sibling
/// earned moments earlier — idempotency holds within a wakeup, not just
/// across round-trips.
#[test]
fn duplicate_submit_within_a_batch_replays_the_verdict() {
    let ctrl = start_controller();
    let mut pipelined = PipelinedClient::connect(ctrl.addr()).unwrap();
    let req = DemandRequest::new(7, "DC1", "DC3", 150.0, 0.95);
    pipelined.queue_submit(&req).unwrap();
    pipelined.queue_submit(&req).unwrap(); // the duplicate
    pipelined.queue_submit(&DemandRequest::new(8, "DC2", "DC6", 80.0, 0.9)).unwrap();
    pipelined.flush().unwrap();

    let verdicts: Vec<(u64, bool)> = (0..3).map(|_| pipelined.recv_verdict().unwrap()).collect();
    assert_eq!(verdicts, vec![(7, true), (7, true), (8, true)]);
    assert_eq!(ctrl.admitted_count(), 2, "the duplicate is not double-counted");
}
