//! Property tests for the wire codec: every message round-trips, and the
//! decoder never panics on arbitrary bytes.

use bate_system::proto::{FlowEntry, Message};
use bate_system::wire::{encode_frame, read_frame, Decode, Encode};
use bytes::{Bytes, BytesMut};
use proptest::prelude::*;

fn arb_message() -> impl Strategy<Value = Message> {
    let entry = (any::<u32>(), any::<u32>(), 0.0f64..1e9).prop_map(|(pair, tunnel, rate)| {
        FlowEntry { pair, tunnel, rate }
    });
    prop_oneof![
        (
            any::<u64>(),
            "[A-Za-z0-9]{1,12}",
            "[A-Za-z0-9]{1,12}",
            0.0f64..1e6,
            0.0f64..1.0,
            0.0f64..1e6,
            0.0f64..1.0,
        )
            .prop_map(
                |(id, src, dst, bandwidth, beta, price, refund_ratio)| Message::SubmitDemand {
                    id,
                    src,
                    dst,
                    bandwidth,
                    beta,
                    price,
                    refund_ratio,
                }
            ),
        any::<u64>().prop_map(|id| Message::WithdrawDemand { id }),
        (any::<u64>(), any::<bool>())
            .prop_map(|(id, admitted)| Message::AdmissionReply { id, admitted }),
        "[A-Za-z0-9]{1,12}".prop_map(|dc| Message::RegisterBroker { dc }),
        (any::<u64>(), prop::collection::vec(entry, 0..8))
            .prop_map(|(demand, entries)| Message::InstallAllocation { demand, entries }),
        any::<u64>().prop_map(|demand| Message::RemoveAllocation { demand }),
        (any::<u32>(), any::<bool>()).prop_map(|(group, up)| Message::LinkReport { group, up }),
        (any::<u64>(), 0.0f64..1e9)
            .prop_map(|(demand, delivered)| Message::StatsReport { demand, delivered }),
        any::<u64>().prop_map(|token| Message::Ping { token }),
        any::<u64>().prop_map(|token| Message::Pong { token }),
        any::<u64>().prop_map(|id| Message::WithdrawAck { id }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn message_roundtrip(msg in arb_message()) {
        let mut buf = BytesMut::new();
        msg.encode(&mut buf);
        let mut bytes = buf.freeze();
        let back = Message::decode(&mut bytes).unwrap();
        prop_assert_eq!(msg, back);
        prop_assert!(bytes.is_empty(), "no trailing bytes");
    }

    /// Arbitrary bytes never panic the decoder — they either parse or
    /// produce a structured error.
    #[test]
    fn decoder_is_total(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut bytes = Bytes::from(data);
        let _ = Message::decode(&mut bytes); // must not panic
    }

    /// Flipping any single byte of a framed encoding never panics the
    /// frame reader — and for flips inside the CRC or payload, the CRC
    /// check is *guaranteed* to reject (CRC32 detects all single-bit and
    /// single-byte errors). Flips inside the length field may instead
    /// surface as a malformed/short frame; they only need to not panic.
    #[test]
    fn single_byte_mutation_never_panics(msg in arb_message(), idx in any::<usize>(), bit in 0u8..8) {
        let mut framed = encode_frame(&msg).unwrap();
        let i = idx % framed.len();
        framed[i] ^= 1 << bit;
        let result = read_frame::<Message, _>(&mut &framed[..]);
        if i >= 4 {
            // CRC field (bytes 4..8) or payload: the CRC must catch it.
            prop_assert!(result.is_err(), "flip at byte {} went undetected", i);
        }
        // Length-field flips (bytes 0..4): any outcome but a panic.
        let _ = result;
    }

    /// Truncating a valid encoding always errors (never mis-parses).
    #[test]
    fn truncation_is_detected(msg in arb_message(), cut in 0usize..64) {
        let mut buf = BytesMut::new();
        msg.encode(&mut buf);
        let full = buf.freeze();
        // Drop between 1 and len bytes off the end.
        let drop = 1 + cut % full.len();
        let mut truncated = full.slice(0..full.len() - drop);
        match Message::decode(&mut truncated) {
            Err(_) => {} // expected
            Ok(parsed) => {
                // A prefix can only decode successfully if it is itself a
                // complete encoding of some message — which cannot equal
                // the original (bytes are missing), and the frame layer
                // would reject trailing garbage anyway. Accept but verify
                // inequality of the total length consumed.
                prop_assert!(parsed != msg || truncated.is_empty());
            }
        }
    }
}
