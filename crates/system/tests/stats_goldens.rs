//! Snapshot-golden checks for metric families a fresh controller must
//! pre-register and render at *exactly zero*.
//!
//! These live in their own test binary on purpose: the assertions are
//! exact-string matches against the process-global registry, so any
//! sibling test that triggers a warm solve or a storm (e.g. a
//! multi-client run whose admission batch runs the incremental
//! scheduler) would perturb the counters. Process isolation keeps the
//! goldens exact without weakening them.

use bate_net::topologies;
use bate_routing::RoutingScheme;
use bate_system::{Client, Controller, ControllerConfig};

fn start_controller() -> Controller {
    Controller::start(ControllerConfig::manual(
        topologies::testbed6(),
        RoutingScheme::default_ksp4(),
        2,
    ))
    .expect("controller start")
}

/// Snapshot-golden check for the incremental warm-start family
/// (DESIGN.md §5e): a freshly started controller pre-registers every
/// `bate_warm_*` metric, so `batectl stats` — and the obscheck harness
/// downstream of the same registry — always render the full family at
/// zero, exactly these lines, even before any demand churn occurs.
#[test]
fn warm_start_families_render_at_zero() {
    let controller = start_controller();
    let mut client = Client::connect(controller.addr()).unwrap();
    let text = client.stats().unwrap();
    let golden = [
        "# TYPE bate_warm_cert_fallbacks_total counter\nbate_warm_cert_fallbacks_total 0\n",
        "# TYPE bate_warm_cold_rounds_total counter\nbate_warm_cold_rounds_total 0\n",
        "# TYPE bate_warm_compactions_total counter\nbate_warm_compactions_total 0\n",
        "# TYPE bate_warm_deltas_total counter\nbate_warm_deltas_total 0\n",
        "# TYPE bate_warm_dual_pivots_total counter\nbate_warm_dual_pivots_total 0\n",
        "# TYPE bate_warm_rounds_total counter\nbate_warm_rounds_total 0\n",
        "# TYPE bate_warm_resolve_ms histogram\n",
    ];
    for snippet in golden {
        assert!(
            text.contains(snippet),
            "stats exposition missing golden snippet {snippet:?} in:\n{text}"
        );
    }
    assert!(text.contains("bate_warm_resolve_ms_count 0\n"));
}

/// Same contract for the recovery-storm family (DESIGN.md §6x): the
/// `bate_storm_*` counters and the recovery-latency histogram render at
/// zero on a controller that has never seen a storm.
#[test]
fn storm_families_render_at_zero() {
    let controller = start_controller();
    let mut client = Client::connect(controller.addr()).unwrap();
    let text = client.stats().unwrap();
    let golden = [
        "# TYPE bate_storm_events_total counter\nbate_storm_events_total 0\n",
        "# TYPE bate_storm_recovery_runs_total counter\nbate_storm_recovery_runs_total 0\n",
        "# TYPE bate_storm_demands_recovered_total counter\nbate_storm_demands_recovered_total 0\n",
        "# TYPE bate_storm_demands_forfeited_total counter\nbate_storm_demands_forfeited_total 0\n",
        "# TYPE bate_storm_churn_deltas_total counter\nbate_storm_churn_deltas_total 0\n",
        "# TYPE bate_storm_recovery_ms histogram\n",
    ];
    for snippet in golden {
        assert!(
            text.contains(snippet),
            "stats exposition missing golden snippet {snippet:?} in:\n{text}"
        );
    }
    assert!(text.contains("bate_storm_recovery_ms_count 0\n"));
}
