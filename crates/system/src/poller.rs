//! A thin, zero-dependency epoll wrapper: the readiness engine under the
//! event-driven controller plane.
//!
//! The workspace rule is no new crates, so instead of `mio`/`libc` this
//! declares the four syscall entry points it needs (`epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `eventfd`) as `extern "C"` functions — std
//! already links the platform libc, these symbols are always present on
//! Linux, and `io::Error::last_os_error()` reads `errno` for us. The
//! surface is deliberately small:
//!
//! * [`Poller`] — register file descriptors with a `u64` token and
//!   read/write interest, then [`Poller::wait`] for readiness events.
//!   Level-triggered (the default), so a handler that drains partially is
//!   re-notified instead of hanging — the property the connection state
//!   machines in [`crate::event`] rely on.
//! * [`Waker`] — an `eventfd` that other threads write to make a blocked
//!   [`Poller::wait`] return (command delivery and shutdown).
//!
//! Nothing here knows about frames or the controller; it is plain
//! readiness plumbing, unit-tested on loopback sockets below.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// One epoll readiness record. On x86-64 the kernel ABI packs the struct
/// (no padding between `events` and `data`); other architectures use
/// natural alignment. Matching the ABI exactly is what makes the
/// `extern "C"` declarations below sound.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0x80000;
const EFD_NONBLOCK: i32 = 0x800;
const EFD_CLOEXEC: i32 = 0x80000;

mod sys {
    use super::EpollEvent;
    use std::ffi::{c_int, c_uint, c_void};

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// A decoded readiness event: which registration fired and how.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Error or hangup on the fd; treat as readable (the read path will
    /// observe the EOF/error and retire the connection).
    pub hangup: bool,
}

/// An epoll instance. Registrations are `(fd, token, interest)`; the
/// token comes back verbatim in [`Event`]s so callers map events to
/// their own connection table without fd reuse hazards.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        let epfd = cvt(unsafe { sys::epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest_bits(read, write),
            data: token,
        };
        cvt(unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Register `fd` under `token` with the given interest set.
    pub fn add(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, read, write)
    }

    /// Replace the interest set of an already registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, read, write)
    }

    /// Deregister an fd (must happen before the fd is closed, or the
    /// registration lingers until kernel cleanup).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        cvt(unsafe { sys::epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) })?;
        Ok(())
    }

    /// Block until readiness or `timeout` (None = forever), filling
    /// `out` with the decoded events. An interrupted wait (`EINTR`)
    /// returns an empty set rather than an error, so callers' loops stay
    /// signal-transparent.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        let timeout_ms: i32 = match timeout {
            // Round up so a 100µs deadline doesn't busy-spin at 0ms.
            Some(t) => t.as_millis().min(i32::MAX as u128) as i32 + i32::from(t.subsec_nanos() % 1_000_000 != 0),
            None => -1,
        };
        let mut buf = [EpollEvent { events: 0, data: 0 }; 128];
        let n = match cvt(unsafe {
            sys::epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
        }) {
            Ok(n) => n as usize,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for ev in &buf[..n] {
            let ev = *ev; // copy out of the (possibly packed) buffer
            out.push(Event {
                token: ev.data,
                readable: ev.events & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: ev.events & EPOLLOUT != 0,
                hangup: ev.events & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

fn interest_bits(read: bool, write: bool) -> u32 {
    let mut bits = EPOLLRDHUP; // always learn about peer half-close
    if read {
        bits |= EPOLLIN;
    }
    if write {
        bits |= EPOLLOUT;
    }
    bits
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { sys::close(self.epfd) };
    }
}

/// Cross-thread wakeup for a [`Poller`]: an `eventfd` registered like any
/// other fd. [`Waker::wake`] is async-signal-safe cheap (one 8-byte
/// write); the poll loop calls [`Waker::drain`] when its token fires.
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    pub fn new() -> io::Result<Waker> {
        let fd = cvt(unsafe { sys::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) })?;
        Ok(Waker { fd })
    }

    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Make a blocked `wait` on the registered poller return. Saturation
    /// (`EAGAIN` on a full counter) still means "signaled", so errors are
    /// deliberately ignored.
    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe {
            sys::write(self.fd, (&one as *const u64).cast(), 8);
        }
    }

    /// Reset the counter so level-triggered polling stops reporting it.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        unsafe {
            sys::read(self.fd, (&mut buf as *mut u64).cast(), 8);
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

// Safety: the waker is just an fd; `write(2)` on an eventfd is thread-safe.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn waker_unblocks_wait() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.add(waker.fd(), 7, true, false).unwrap();

        let w = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w.wake();
        });
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        waker.drain();
        t.join().unwrap();

        // Drained: an immediate wait times out with no events.
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn socket_readability_and_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 42, true, false).unwrap();

        let mut events = Vec::new();
        // Nothing sent yet: quiet.
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());

        client.write_all(b"hello").unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable));

        // Level-triggered: unread bytes keep the fd readable.
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable));

        // Write interest on an idle socket reports writable immediately.
        poller.modify(server.as_raw_fd(), 42, true, true).unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.writable));

        poller.delete(server.as_raw_fd()).unwrap();
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());
    }
}
