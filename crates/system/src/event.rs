//! Connection state machines for the event-driven controller plane.
//!
//! One [`Conn`] per accepted socket, owned exclusively by the controller's
//! poll loop — no per-connection threads, no locks. Reads go through a
//! [`FrameAssembler`] so partial frames cost buffer space instead of a
//! blocked thread; writes go through an owned write buffer flushed
//! opportunistically, with `EPOLLOUT` interest only while bytes are
//! actually pending (backpressure without busy-polling).
//!
//! A connection can be `eof` (peer finished sending; frames already
//! received are still processed, queued replies still flushed) or `dead`
//! (protocol damage or transport error; same terminal handling as the
//! threaded plane's "drop the connection and let the peer redial").

use crate::proto::Message;
use crate::wire::{decode_payload, FrameAssembler, FrameCtx};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

pub(crate) struct Conn {
    pub stream: TcpStream,
    assembler: FrameAssembler,
    wbuf: Vec<u8>,
    wpos: usize,
    /// Whether `EPOLLOUT` interest is currently registered for this fd
    /// (tracked so the loop only issues `epoll_ctl` on transitions).
    pub writable_interest: bool,
    pub eof: bool,
    pub dead: bool,
    /// Set when this connection registered as a broker, so its death
    /// retires the broker entry.
    pub broker_dc: Option<String>,
    /// Raw bytes read — the per-connection progress counter the
    /// slow-loris tests assert on.
    pub bytes_in: u64,
    pub frames_in: u64,
    /// Deadline for completing the frame currently being assembled. Armed
    /// when the read buffer goes from empty to mid-frame, cleared when it
    /// drains; deliberately NOT refreshed on partial progress, so a
    /// dribbler trickling one byte per wakeup is reaped just like a
    /// mid-frame staller. Idle connections *between* frames are never
    /// reaped (brokers legitimately sit quiet).
    frame_deadline: Option<Instant>,
}

impl Conn {
    pub fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            assembler: FrameAssembler::new(),
            wbuf: Vec::new(),
            wpos: 0,
            writable_interest: false,
            eof: false,
            dead: false,
            broker_dc: None,
            bytes_in: 0,
            frames_in: 0,
            frame_deadline: None,
        }
    }

    /// Drain everything the socket has, assemble frames, decode messages
    /// into `out` in arrival order. Transport/protocol failures mark the
    /// connection dead; a clean EOF mid-frame is a severed frame and also
    /// dead (mirroring the blocking reader's `Malformed("eof after …")`).
    pub fn read_ready(
        &mut self,
        frame_timeout: Option<Duration>,
        out: &mut Vec<(Option<FrameCtx>, Message)>,
    ) {
        let mut tmp = [0u8; 64 * 1024];
        loop {
            match self.stream.read(&mut tmp) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    self.bytes_in += n as u64;
                    self.assembler.push(&tmp[..n]);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        loop {
            match self.assembler.next_frame() {
                Ok(Some((ctx, payload))) => {
                    self.frames_in += 1;
                    match decode_payload::<Message>(payload) {
                        Ok(msg) => out.push((ctx, msg)),
                        Err(_) => {
                            self.dead = true;
                            return;
                        }
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        if self.assembler.buffered() > 0 {
            if self.eof {
                self.dead = true; // severed mid-frame
            } else if self.frame_deadline.is_none() {
                self.frame_deadline = frame_timeout.map(|t| Instant::now() + t);
            }
        } else {
            self.frame_deadline = None;
        }
    }

    /// Queue one pre-encoded frame for delivery (accounted as sent; the
    /// loop flushes at the end of the wakeup).
    pub fn queue_frame(&mut self, frame: &[u8]) {
        crate::wire::note_frame_sent(frame.len());
        self.wbuf.extend_from_slice(frame);
    }

    pub fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Write as much of the pending buffer as the socket accepts.
    pub fn flush(&mut self) {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.wpos >= self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos > 64 * 1024 {
            // Reclaim the flushed prefix so a long-lived slow reader
            // doesn't hold the high-water mark forever.
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
    }

    /// Whether the peer is mid-frame (partial bytes buffered).
    pub fn mid_frame(&self) -> bool {
        self.assembler.buffered() > 0
    }

    /// The reap deadline for the frame in flight, if one is armed.
    pub fn frame_deadline(&self) -> Option<Instant> {
        self.frame_deadline
    }

    pub fn overdue(&self, now: Instant) -> bool {
        self.frame_deadline.is_some_and(|d| now >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::encode_frame;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (client, server)
    }

    #[test]
    fn partial_frame_arms_deadline_and_completion_clears_it() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(server);
        let frame = encode_frame(&Message::Ping { token: 1 }).unwrap();

        client.write_all(&frame[..5]).unwrap();
        // Wait until the bytes are observable on the nonblocking side.
        let mut out = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        while conn.bytes_in < 5 && Instant::now() < deadline {
            conn.read_ready(Some(Duration::from_secs(1)), &mut out);
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(out.is_empty());
        assert!(conn.mid_frame());
        assert!(conn.frame_deadline().is_some());
        assert!(!conn.overdue(Instant::now()));
        assert!(conn.overdue(Instant::now() + Duration::from_secs(2)));

        client.write_all(&frame[5..]).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        while out.is_empty() && Instant::now() < deadline {
            conn.read_ready(Some(Duration::from_secs(1)), &mut out);
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(matches!(out[0].1, Message::Ping { token: 1 }));
        assert!(!conn.mid_frame());
        assert!(conn.frame_deadline().is_none());
        assert!(!conn.dead && !conn.eof);
    }

    #[test]
    fn eof_mid_frame_is_dead_eof_at_boundary_is_clean() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(server);
        let frame = encode_frame(&Message::Ping { token: 2 }).unwrap();
        client.write_all(&frame[..3]).unwrap();
        drop(client);
        let mut out = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        while !conn.dead && Instant::now() < deadline {
            conn.read_ready(None, &mut out);
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(conn.dead, "severed mid-frame must be terminal");

        let (mut client, server) = pair();
        let mut conn = Conn::new(server);
        client.write_all(&frame).unwrap();
        drop(client);
        let mut out = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        while !conn.eof && Instant::now() < deadline {
            conn.read_ready(None, &mut out);
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(out.len(), 1, "frame before the close is still delivered");
        assert!(!conn.dead, "clean close at a boundary is not damage");
    }

    #[test]
    fn queued_frames_flush_and_clear_write_interest() {
        let (client, server) = pair();
        let mut conn = Conn::new(server);
        let frame = encode_frame(&Message::Pong { token: 3 }).unwrap();
        conn.queue_frame(&frame);
        assert!(conn.wants_write());
        conn.flush();
        assert!(!conn.wants_write());
        let mut reader = client;
        let msg: Message = crate::wire::read_frame(&mut reader).unwrap();
        assert!(matches!(msg, Message::Pong { token: 3 }));
    }
}
