//! Token-bucket bandwidth enforcement (§4, Bandwidth Enforcer).
//!
//! The broker translates controller allocations into per-(demand, tunnel)
//! rate limits; the testbed uses switch meters, we use token buckets. Rates
//! are in Mbps; `consume` takes megabits.

use parking_lot::Mutex;
use std::collections::HashMap;

/// One token bucket: `rate` tokens/second, burst up to `burst` tokens.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: f64,
}

impl TokenBucket {
    pub fn new(rate: f64, burst: f64) -> TokenBucket {
        assert!(rate >= 0.0 && burst >= 0.0);
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last: 0.0,
        }
    }

    /// Try to consume `amount` tokens at time `now` (seconds, monotone).
    /// Returns true if allowed.
    pub fn consume(&mut self, amount: f64, now: f64) -> bool {
        self.refill(now);
        if self.tokens >= amount {
            self.tokens -= amount;
            true
        } else {
            false
        }
    }

    /// How much could be sent right now without waiting.
    pub fn available(&mut self, now: f64) -> f64 {
        self.refill(now);
        self.tokens
    }

    fn refill(&mut self, now: f64) {
        if now > self.last {
            self.tokens = (self.tokens + (now - self.last) * self.rate).min(self.burst);
            self.last = now;
        }
    }

    /// Change the sustained rate (allocation update); burst scales with it.
    pub fn set_rate(&mut self, rate: f64) {
        self.rate = rate;
        self.burst = rate.max(1.0);
        self.tokens = self.tokens.min(self.burst);
    }

    pub fn rate(&self) -> f64 {
        self.rate
    }
}

/// The broker's enforcement table: one bucket per (demand, pair, tunnel).
#[derive(Default)]
pub struct Enforcer {
    buckets: Mutex<HashMap<(u64, u32, u32), TokenBucket>>,
}

impl Enforcer {
    pub fn new() -> Enforcer {
        Enforcer::default()
    }

    /// Install or update a rate limit.
    pub fn install(&self, demand: u64, pair: u32, tunnel: u32, rate: f64) {
        let mut buckets = self.buckets.lock();
        buckets
            .entry((demand, pair, tunnel))
            .and_modify(|b| b.set_rate(rate))
            .or_insert_with(|| TokenBucket::new(rate, rate.max(1.0)));
    }

    /// Remove every entry of a demand.
    pub fn remove_demand(&self, demand: u64) {
        self.buckets.lock().retain(|&(d, _, _), _| d != demand);
    }

    /// Attempt to send `amount` megabits for a flow at time `now`.
    pub fn try_send(&self, demand: u64, pair: u32, tunnel: u32, amount: f64, now: f64) -> bool {
        match self.buckets.lock().get_mut(&(demand, pair, tunnel)) {
            Some(b) => b.consume(amount, now),
            None => false, // no allocation installed → drop
        }
    }

    /// Current configured rate of a flow (0 if absent).
    pub fn rate_of(&self, demand: u64, pair: u32, tunnel: u32) -> f64 {
        self.buckets
            .lock()
            .get(&(demand, pair, tunnel))
            .map(|b| b.rate())
            .unwrap_or(0.0)
    }

    /// Total configured rate of a demand across tunnels.
    pub fn demand_rate(&self, demand: u64) -> f64 {
        self.buckets
            .lock()
            .iter()
            .filter(|(&(d, _, _), _)| d == demand)
            .map(|(_, b)| b.rate())
            .sum()
    }

    /// Number of installed flow entries.
    pub fn len(&self) -> usize {
        self.buckets.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_limits_sustained_rate() {
        let mut b = TokenBucket::new(100.0, 100.0);
        // Drain the initial burst.
        assert!(b.consume(100.0, 0.0));
        assert!(!b.consume(1.0, 0.0));
        // After 0.5 s, 50 tokens are back.
        assert!(b.consume(50.0, 0.5));
        assert!(!b.consume(1.0, 0.5));
        // Refill never exceeds burst.
        assert!(b.available(100.0) <= 100.0);
    }

    #[test]
    fn bucket_rate_update() {
        let mut b = TokenBucket::new(10.0, 10.0);
        b.set_rate(200.0);
        assert_eq!(b.rate(), 200.0);
        assert!(b.consume(10.0, 0.0)); // leftover tokens still usable
        assert!(b.consume(190.0, 1.0));
    }

    #[test]
    fn enforcer_table_operations() {
        let e = Enforcer::new();
        e.install(1, 0, 0, 60.0);
        e.install(1, 0, 1, 40.0);
        e.install(2, 3, 0, 10.0);
        assert_eq!(e.len(), 3);
        assert_eq!(e.demand_rate(1), 100.0);
        assert_eq!(e.rate_of(2, 3, 0), 10.0);
        assert!(e.try_send(1, 0, 0, 30.0, 0.0));
        assert!(!e.try_send(9, 0, 0, 1.0, 0.0), "uninstalled flow drops");
        e.remove_demand(1);
        assert_eq!(e.len(), 1);
        assert_eq!(e.demand_rate(1), 0.0);
    }

    #[test]
    fn reinstall_updates_rate() {
        let e = Enforcer::new();
        e.install(1, 0, 0, 60.0);
        e.install(1, 0, 0, 25.0);
        assert_eq!(e.len(), 1);
        assert_eq!(e.rate_of(1, 0, 0), 25.0);
    }
}
