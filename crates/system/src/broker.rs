//! The per-DC broker (§4): receives allocations, programs the bandwidth
//! enforcer, reports link events to the controller.
//!
//! Hardened for lossy control channels: the broker holds a [`Dialer`]
//! rather than a bare socket, so when the controller connection is severed
//! the reader thread redials with bounded exponential backoff and
//! re-registers — the controller then re-pushes every live allocation and
//! the broker converges without operator intervention. Test waits
//! (`wait_for_demand`, `wait_for_rate`) are condvar-notified instead of
//! polling wall-clock sleeps.

use crate::client::Dialer;
use crate::enforcer::Enforcer;
use crate::proto::{FlowEntry, Message};
use crate::wire::{read_frame_ctx, write_frame, FrameCtx, Transport};
use bate_core::clock::{Clock, SystemClock};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Installed flow entries plus a condvar so waiters are woken on every
/// change instead of polling.
struct InstalledMap {
    map: StdMutex<HashMap<u64, Vec<FlowEntry>>>,
    changed: Condvar,
}

impl InstalledMap {
    fn new() -> Self {
        InstalledMap {
            map: StdMutex::new(HashMap::new()),
            changed: Condvar::new(),
        }
    }

    fn set(&self, demand: u64, entries: Vec<FlowEntry>) {
        self.map.lock().unwrap().insert(demand, entries);
        self.changed.notify_all();
    }

    fn remove(&self, demand: u64) {
        self.map.lock().unwrap().remove(&demand);
        self.changed.notify_all();
    }

    /// Block until `pred` holds on the map, waking on every install/remove.
    fn wait(&self, timeout: Duration, pred: impl Fn(&HashMap<u64, Vec<FlowEntry>>) -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        let mut guard = self.map.lock().unwrap();
        loop {
            if pred(&guard) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (g, _) = self.changed.wait_timeout(guard, deadline - now).unwrap();
            guard = g;
        }
    }
}

/// Reconnect schedule for a severed controller connection.
const RECONNECT_ATTEMPTS: u32 = 20;
const RECONNECT_BASE: Duration = Duration::from_millis(5);
const RECONNECT_MAX: Duration = Duration::from_millis(200);

/// A connected broker. Disconnects when dropped.
pub struct Broker {
    writer: Arc<Mutex<Box<dyn Transport>>>,
    enforcer: Arc<Enforcer>,
    installed: Arc<InstalledMap>,
    reader: Option<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
    reconnects: Arc<AtomicU64>,
}

impl Broker {
    /// Connect to the controller over TCP and register as the broker for
    /// `dc`.
    pub fn connect(addr: SocketAddr, dc: &str) -> io::Result<Broker> {
        Broker::connect_via(
            Box::new(move || {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                Ok(Box::new(stream) as Box<dyn Transport>)
            }),
            dc,
            SystemClock::shared(),
        )
    }

    /// Connect through an arbitrary transport factory (fault proxies). The
    /// dialer is also what reconnection uses after a severed link.
    pub fn connect_via(mut dial: Dialer, dc: &str, clock: Arc<dyn Clock>) -> io::Result<Broker> {
        let stream = dial()?;
        let mut reg = stream.try_clone_box()?;
        write_frame(&mut *reg, &Message::RegisterBroker { dc: dc.to_string() })
            .map_err(|e| io::Error::other(e.to_string()))?;

        let enforcer = Arc::new(Enforcer::new());
        let installed = Arc::new(InstalledMap::new());
        let writer: Arc<Mutex<Box<dyn Transport>>> = Arc::new(Mutex::new(stream.try_clone_box()?));
        let shutdown = Arc::new(AtomicBool::new(false));
        let reconnects = Arc::new(AtomicU64::new(0));

        let e2 = Arc::clone(&enforcer);
        let i2 = Arc::clone(&installed);
        let w2 = Arc::clone(&writer);
        let sd = Arc::clone(&shutdown);
        let rc = Arc::clone(&reconnects);
        let dc_name = dc.to_string();
        let mut read_stream = stream;
        let reader = std::thread::spawn(move || loop {
            if sd.load(Ordering::Relaxed) {
                return;
            }
            let (rctx, msg): (Option<FrameCtx>, Message) = match read_frame_ctx(&mut *read_stream)
            {
                Ok(m) => m,
                Err(_) if sd.load(Ordering::Relaxed) => return,
                // Clean close or mid-frame severance: either way the
                // connection is gone — redial, re-register, resume.
                Err(_) => {
                    match reconnect(&mut dial, &dc_name, &sd, &clock) {
                        Some(stream) => {
                            if let Ok(clone) = stream.try_clone_box() {
                                *w2.lock() = clone;
                            }
                            read_stream = stream;
                            rc.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                        None => return,
                    }
                }
            };
            match msg {
                Message::InstallAllocation { demand, entries } => {
                    // Adopt the push's context: the enforcement install
                    // becomes the terminal span of the trace that started
                    // at the client's submit.
                    let _adopted =
                        rctx.map(|c| bate_obs::context::adopt("broker.install", c.trace_id, c.span_id));
                    // Span only when a context arrived: untraced installs
                    // must stay silent (reader thread ⇒ nondeterministic
                    // interleaving otherwise).
                    let _sp = _adopted
                        .is_some()
                        .then(|| bate_obs::span!("broker.install", demand = demand, entries = entries.len()));
                    // Replace the demand's enforcement entries wholesale:
                    // the controller always sends the complete set.
                    e2.remove_demand(demand);
                    for entry in &entries {
                        e2.install(demand, entry.pair, entry.tunnel, entry.rate);
                    }
                    i2.set(demand, entries);
                }
                Message::RemoveAllocation { demand } => {
                    let _adopted =
                        rctx.map(|c| bate_obs::context::adopt("broker.remove", c.trace_id, c.span_id));
                    let _sp = _adopted
                        .is_some()
                        .then(|| bate_obs::span!("broker.remove", demand = demand));
                    e2.remove_demand(demand);
                    i2.remove(demand);
                }
                Message::Ping { token } => {
                    let mut w = w2.lock();
                    if write_frame(&mut **w, &Message::Pong { token }).is_err() {
                        // Leave teardown to the next read error.
                        drop(w);
                    }
                }
                _ => {}
            }
        });

        Ok(Broker {
            writer,
            enforcer,
            installed,
            reader: Some(reader),
            shutdown,
            reconnects,
        })
    }

    /// Report a fate-group state change to the controller (the Network
    /// Agent "tracks the network topology, reports any change or failure").
    pub fn report_link(&self, group: u32, up: bool) -> io::Result<()> {
        let mut w = self.writer.lock();
        write_frame(&mut **w, &Message::LinkReport { group, up })
            .map_err(|e| io::Error::other(e.to_string()))
    }

    /// Report measured delivery statistics for a demand.
    pub fn report_stats(&self, demand: u64, delivered: f64) -> io::Result<()> {
        let mut w = self.writer.lock();
        write_frame(&mut **w, &Message::StatsReport { demand, delivered })
            .map_err(|e| io::Error::other(e.to_string()))
    }

    /// The local bandwidth enforcer.
    pub fn enforcer(&self) -> &Enforcer {
        &self.enforcer
    }

    /// How many times the controller connection has been re-established.
    pub fn reconnect_count(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Total installed rate for a demand (0 until an install arrives).
    pub fn installed_rate(&self, demand: u64) -> f64 {
        self.installed
            .map
            .lock()
            .unwrap()
            .get(&demand)
            .map(|es| es.iter().map(|e| e.rate).sum())
            .unwrap_or(0.0)
    }

    /// The installed flow entries for a demand.
    pub fn entries(&self, demand: u64) -> Vec<FlowEntry> {
        self.installed
            .map
            .lock()
            .unwrap()
            .get(&demand)
            .cloned()
            .unwrap_or_default()
    }

    /// Block until an allocation for `demand` arrives (condvar-notified —
    /// no polling).
    pub fn wait_for_demand(&self, demand: u64, timeout: Duration) -> bool {
        self.installed.wait(timeout, |m| m.contains_key(&demand))
    }

    /// Block until the installed entries of `demand` satisfy `pred`
    /// (absent demand ⇒ empty slice).
    pub fn wait_for_entries(
        &self,
        demand: u64,
        timeout: Duration,
        pred: impl Fn(&[FlowEntry]) -> bool,
    ) -> bool {
        self.installed
            .wait(timeout, |m| pred(m.get(&demand).map_or(&[], |es| es)))
    }

    /// Block until the installed rate of `demand` satisfies `pred`.
    pub fn wait_for_rate(
        &self,
        demand: u64,
        timeout: Duration,
        pred: impl Fn(f64) -> bool,
    ) -> bool {
        self.installed.wait(timeout, |m| {
            pred(m
                .get(&demand)
                .map(|es| es.iter().map(|e| e.rate).sum())
                .unwrap_or(0.0))
        })
    }
}

/// Redial the controller with bounded exponential backoff and re-register.
/// Returns the fresh transport, or `None` when attempts are exhausted or
/// shutdown was requested.
fn reconnect(
    dial: &mut Dialer,
    dc: &str,
    shutdown: &AtomicBool,
    clock: &Arc<dyn Clock>,
) -> Option<Box<dyn Transport>> {
    for attempt in 0..RECONNECT_ATTEMPTS {
        if shutdown.load(Ordering::Relaxed) {
            return None;
        }
        if attempt > 0 {
            let exp = RECONNECT_BASE.saturating_mul(1u32 << (attempt - 1).min(16));
            clock.sleep(exp.min(RECONNECT_MAX));
            if shutdown.load(Ordering::Relaxed) {
                return None;
            }
        }
        let Ok(mut stream) = dial() else { continue };
        if write_frame(&mut *stream, &Message::RegisterBroker { dc: dc.to_string() }).is_ok() {
            return Some(stream);
        }
    }
    None
}

impl Drop for Broker {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Closing both halves unblocks the reader thread.
        self.writer.lock().shutdown_both().ok();
        if let Some(r) = self.reader.take() {
            r.join().ok();
        }
    }
}
