//! The per-DC broker (§4): receives allocations, programs the bandwidth
//! enforcer, reports link events to the controller.

use crate::enforcer::Enforcer;
use crate::proto::{FlowEntry, Message};
use crate::wire::{read_frame, write_frame, WireError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A connected broker. Disconnects when dropped.
pub struct Broker {
    writer: Arc<Mutex<TcpStream>>,
    enforcer: Arc<Enforcer>,
    installed: Arc<Mutex<HashMap<u64, Vec<FlowEntry>>>>,
    reader: Option<JoinHandle<()>>,
}

impl Broker {
    /// Connect to the controller and register as the broker for `dc`.
    pub fn connect(addr: SocketAddr, dc: &str) -> io::Result<Broker> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut reg = stream.try_clone()?;
        write_frame(&mut reg, &Message::RegisterBroker { dc: dc.to_string() })
            .map_err(|e| io::Error::other(e.to_string()))?;

        let enforcer = Arc::new(Enforcer::new());
        let installed: Arc<Mutex<HashMap<u64, Vec<FlowEntry>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let writer = Arc::new(Mutex::new(stream.try_clone()?));

        let e2 = Arc::clone(&enforcer);
        let i2 = Arc::clone(&installed);
        let w2 = Arc::clone(&writer);
        let mut read_stream = stream;
        let reader = std::thread::spawn(move || loop {
            let msg: Message = match read_frame(&mut read_stream) {
                Ok(m) => m,
                Err(WireError::Closed) => return,
                Err(_) => return,
            };
            match msg {
                Message::InstallAllocation { demand, entries } => {
                    // Replace the demand's enforcement entries wholesale:
                    // the controller always sends the complete set.
                    e2.remove_demand(demand);
                    for entry in &entries {
                        e2.install(demand, entry.pair, entry.tunnel, entry.rate);
                    }
                    i2.lock().insert(demand, entries);
                }
                Message::RemoveAllocation { demand } => {
                    e2.remove_demand(demand);
                    i2.lock().remove(&demand);
                }
                Message::Ping { token } => {
                    let mut w = w2.lock();
                    if write_frame(&mut *w, &Message::Pong { token }).is_err() {
                        return;
                    }
                }
                _ => {}
            }
        });

        Ok(Broker {
            writer,
            enforcer,
            installed,
            reader: Some(reader),
        })
    }

    /// Report a fate-group state change to the controller (the Network
    /// Agent "tracks the network topology, reports any change or failure").
    pub fn report_link(&self, group: u32, up: bool) -> io::Result<()> {
        let mut w = self.writer.lock();
        write_frame(&mut *w, &Message::LinkReport { group, up })
            .map_err(|e| io::Error::other(e.to_string()))
    }

    /// Report measured delivery statistics for a demand.
    pub fn report_stats(&self, demand: u64, delivered: f64) -> io::Result<()> {
        let mut w = self.writer.lock();
        write_frame(&mut *w, &Message::StatsReport { demand, delivered })
            .map_err(|e| io::Error::other(e.to_string()))
    }

    /// The local bandwidth enforcer.
    pub fn enforcer(&self) -> &Enforcer {
        &self.enforcer
    }

    /// Total installed rate for a demand (0 until an install arrives).
    pub fn installed_rate(&self, demand: u64) -> f64 {
        self.installed
            .lock()
            .get(&demand)
            .map(|es| es.iter().map(|e| e.rate).sum())
            .unwrap_or(0.0)
    }

    /// The installed flow entries for a demand.
    pub fn entries(&self, demand: u64) -> Vec<FlowEntry> {
        self.installed
            .lock()
            .get(&demand)
            .cloned()
            .unwrap_or_default()
    }

    /// Poll until an allocation for `demand` arrives (test/demo helper).
    pub fn wait_for_demand(&self, demand: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.installed.lock().contains_key(&demand) {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        false
    }

    /// Poll until the installed rate of `demand` satisfies `pred`.
    pub fn wait_for_rate(
        &self,
        demand: u64,
        timeout: Duration,
        pred: impl Fn(f64) -> bool,
    ) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if pred(self.installed_rate(demand)) {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        false
    }
}

impl Drop for Broker {
    fn drop(&mut self) {
        // Closing the write half unblocks the reader thread.
        if let Ok(stream) = self.writer.lock().try_clone() {
            stream.shutdown(std::net::Shutdown::Both).ok();
        }
        if let Some(r) = self.reader.take() {
            r.join().ok();
        }
    }
}
