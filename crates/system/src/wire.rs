//! Length-prefixed, CRC-protected binary framing and primitive codecs,
//! over an abstract byte-stream [`Transport`].
//!
//! Frame layout: `u32` big-endian payload length, `u32` big-endian CRC-32
//! (IEEE) of the payload, then the payload. The payload is encoded with the
//! [`Encode`]/[`Decode`] traits below — a small hand-rolled binary format
//! (fixed-width integers big-endian, f64 as IEEE bits, strings and vectors
//! length-prefixed) so the workspace needs no serialization framework
//! beyond `bytes`.
//!
//! The CRC is the fault-injection hardening: a frame whose payload was
//! corrupted or truncated in flight decodes to [`WireError::Corrupt`]
//! instead of mis-parsing into a structurally valid but wrong message (a
//! truncated `f64` rate, say, is otherwise indistinguishable from a real
//! one). Oversized length headers are rejected before any allocation.
//!
//! [`Transport`] abstracts the byte stream ([`TcpStream`] in production)
//! so the fault-injection harness can interpose an in-process proxy or a
//! wrapped stream without the endpoints knowing.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Registry handles for the wire metric family. Frames move on many
/// threads concurrently (controller per-connection handlers, broker
/// reader/writer splits), so these are metrics only — counter adds
/// commute, trace events would interleave nondeterministically.
struct WireMetrics {
    frames_sent: Arc<bate_obs::Counter>,
    frames_received: Arc<bate_obs::Counter>,
    bytes_sent: Arc<bate_obs::Counter>,
    bytes_received: Arc<bate_obs::Counter>,
    corrupt: Arc<bate_obs::Counter>,
    malformed: Arc<bate_obs::Counter>,
}

fn wire_metrics() -> &'static WireMetrics {
    static M: OnceLock<WireMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = bate_obs::Registry::global();
        WireMetrics {
            frames_sent: r.counter("bate_wire_frames_sent_total"),
            frames_received: r.counter("bate_wire_frames_received_total"),
            bytes_sent: r.counter("bate_wire_bytes_sent_total"),
            bytes_received: r.counter("bate_wire_bytes_received_total"),
            corrupt: r.counter("bate_wire_corrupt_frames_total"),
            malformed: r.counter("bate_wire_malformed_frames_total"),
        }
    })
}

/// Maximum accepted frame size; anything larger is a protocol violation.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Bit 31 of the length word flags an optional 16-byte trace context
/// between the 8-byte header and the payload. Real payload lengths are
/// bounded by [`MAX_FRAME`] (2²⁴), so the flag bit can never be part of
/// a legitimate length — which is what makes the header extension
/// backward-compatible: frames from pre-context senders never have it
/// set, and new decoders accept both shapes.
pub const CTX_FLAG: u32 = 0x8000_0000;

/// Size of the optional trace-context header extension.
pub const CTX_BYTES: usize = 16;

/// The causal identity a frame carries: the sender's trace and span, so
/// the receiver can parent its own spans on the sender's
/// ([`bate_obs::context::adopt`]). `parent_span_id` never travels — it
/// is derivable on the sender and meaningless to the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameCtx {
    pub trace_id: u64,
    pub span_id: u64,
}

impl FrameCtx {
    /// The calling thread's current span context, if inside a trace —
    /// what senders stamp onto outgoing frames.
    pub fn current() -> Option<FrameCtx> {
        let ctx = bate_obs::context::current();
        if ctx.is_some() {
            Some(FrameCtx {
                trace_id: ctx.trace_id,
                span_id: ctx.span_id,
            })
        } else {
            None
        }
    }

    fn to_bytes(self) -> [u8; CTX_BYTES] {
        let mut b = [0u8; CTX_BYTES];
        b[..8].copy_from_slice(&self.trace_id.to_be_bytes());
        b[8..].copy_from_slice(&self.span_id.to_be_bytes());
        b
    }

    fn from_bytes(b: &[u8]) -> FrameCtx {
        FrameCtx {
            trace_id: u64::from_be_bytes(b[..8].try_into().unwrap()),
            span_id: u64::from_be_bytes(b[8..CTX_BYTES].try_into().unwrap()),
        }
    }
}

/// Errors surfaced by the codec.
#[derive(Debug)]
pub enum WireError {
    Io(io::Error),
    /// Frame exceeded [`MAX_FRAME`] or was otherwise malformed.
    Malformed(String),
    /// Frame-level CRC mismatch: bytes arrived but were damaged in flight.
    Corrupt { expected: u32, got: u32 },
    /// The peer closed the connection cleanly.
    Closed,
}

impl WireError {
    /// True for errors a bounded-retry caller should treat as transient
    /// (timeouts and interrupted reads), as opposed to protocol
    /// violations.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            WireError::Io(e) if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            )
        )
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io error: {e}"),
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
            WireError::Corrupt { expected, got } => {
                write!(f, "corrupt frame: crc {got:#010x}, expected {expected:#010x}")
            }
            WireError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// An abstract bidirectional byte stream: what the control plane actually
/// requires from its connections. [`TcpStream`] is the production
/// implementation; the fault-injection harness provides wrapped streams
/// that drop, delay, corrupt, or sever traffic.
pub trait Transport: Read + Write + Send {
    /// A second, independently usable handle to the same stream (the
    /// reader/writer split both `Broker` and `Controller` rely on).
    fn try_clone_box(&self) -> io::Result<Box<dyn Transport>>;

    /// Tear down both directions; concurrent reads unblock with EOF.
    fn shutdown_both(&self) -> io::Result<()>;

    /// Bound subsequent reads; `None` restores blocking reads.
    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()>;
}

impl Transport for TcpStream {
    fn try_clone_box(&self) -> io::Result<Box<dyn Transport>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn shutdown_both(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Both)
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, t)
    }
}

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Encode a value into a buffer.
pub trait Encode {
    fn encode(&self, buf: &mut BytesMut);
}

/// Decode a value from a buffer.
pub trait Decode: Sized {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError>;
}

fn need(buf: &Bytes, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::Malformed(format!(
            "need {n} bytes, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

macro_rules! int_codec {
    ($ty:ty, $put:ident, $get:ident, $n:expr) => {
        impl Encode for $ty {
            fn encode(&self, buf: &mut BytesMut) {
                buf.$put(*self);
            }
        }
        impl Decode for $ty {
            fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
                need(buf, $n)?;
                Ok(buf.$get())
            }
        }
    };
}

int_codec!(u8, put_u8, get_u8, 1);
int_codec!(u32, put_u32, get_u32, 4);
int_codec!(u64, put_u64, get_u64, 8);

impl Encode for f64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_f64(*self);
    }
}

impl Decode for f64 {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 8)?;
        Ok(buf.get_f64())
    }
}

impl Encode for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self as u8);
    }
}

impl Decode for bool {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 1)?;
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::Malformed(format!("bad bool byte {b}"))),
        }
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        buf.put_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = u32::decode(buf)? as usize;
        need(buf, len)?;
        let bytes = buf.split_to(len);
        String::from_utf8(bytes.to_vec())
            .map_err(|e| WireError::Malformed(format!("bad utf8: {e}")))
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = u32::decode(buf)? as usize;
        if len > MAX_FRAME {
            return Err(WireError::Malformed(format!("vector of {len} elements")));
        }
        let mut out = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

/// Encode `msg` into the full frame bytes (header + CRC + payload).
/// Shared by [`write_frame`] and the fault proxy, which needs to
/// re-frame messages it parsed off the wire.
pub fn encode_frame<T: Encode>(msg: &T) -> Result<Vec<u8>, WireError> {
    encode_frame_ctx(msg, None)
}

/// [`encode_frame`] with an optional trace context carried in the
/// header extension (see [`CTX_FLAG`]). The CRC covers the context
/// bytes *and* the payload, so in-flight damage to either is detected.
pub fn encode_frame_ctx<T: Encode>(
    msg: &T,
    ctx: Option<FrameCtx>,
) -> Result<Vec<u8>, WireError> {
    let mut payload = BytesMut::new();
    msg.encode(&mut payload);
    if payload.len() > MAX_FRAME {
        return Err(WireError::Malformed(format!(
            "frame too large: {}",
            payload.len()
        )));
    }
    Ok(match ctx {
        None => encode_raw_frame(None, &payload, crc32(&payload)),
        Some(c) => encode_raw_frame(Some(c), &payload, frame_crc(Some(c), &payload)),
    })
}

/// The CRC a well-formed frame must carry: over the context bytes (when
/// present) followed by the payload. What the fault proxy uses to
/// re-frame forwarded traffic without stripping its trace context.
pub fn frame_crc(ctx: Option<FrameCtx>, payload: &[u8]) -> u32 {
    match ctx {
        None => crc32(payload),
        Some(c) => {
            let mut input = Vec::with_capacity(CTX_BYTES + payload.len());
            input.extend_from_slice(&c.to_bytes());
            input.extend_from_slice(payload);
            crc32(&input)
        }
    }
}

/// Assemble raw frame bytes from pre-computed parts (an explicit CRC so
/// the fault proxy can forward deliberately damaged frames verbatim).
pub fn encode_raw_frame(ctx: Option<FrameCtx>, payload: &[u8], crc: u32) -> Vec<u8> {
    let ctx_len = if ctx.is_some() { CTX_BYTES } else { 0 };
    let mut out = Vec::with_capacity(8 + ctx_len + payload.len());
    let len_word = payload.len() as u32 | if ctx.is_some() { CTX_FLAG } else { 0 };
    out.extend_from_slice(&len_word.to_be_bytes());
    out.extend_from_slice(&crc.to_be_bytes());
    if let Some(c) = ctx {
        out.extend_from_slice(&c.to_bytes());
    }
    out.extend_from_slice(payload);
    out
}

/// Write one frame (blocking).
pub fn write_frame<T: Encode, S: Write + ?Sized>(stream: &mut S, msg: &T) -> Result<(), WireError> {
    write_frame_ctx(stream, msg, None)
}

/// Write one frame stamped with a trace context (blocking). Passing
/// `FrameCtx::current()` propagates the calling thread's span across
/// the connection.
pub fn write_frame_ctx<T: Encode, S: Write + ?Sized>(
    stream: &mut S,
    msg: &T,
    ctx: Option<FrameCtx>,
) -> Result<(), WireError> {
    let frame = encode_frame_ctx(msg, ctx)?;
    stream.write_all(&frame)?;
    stream.flush()?;
    let m = wire_metrics();
    m.frames_sent.inc();
    m.bytes_sent.add(frame.len() as u64);
    Ok(())
}

/// Read one raw frame payload (header-validated, CRC-checked),
/// discarding any trace context. [`WireError::Closed`] on clean EOF at
/// a frame boundary.
pub fn read_frame_bytes<S: Read + ?Sized>(stream: &mut S) -> Result<Bytes, WireError> {
    read_raw_frame(stream).map(|(_, payload)| payload)
}

/// Read one raw frame, preserving its trace context (what the fault
/// proxy uses so re-framed traffic keeps end-to-end causality).
pub fn read_raw_frame<S: Read + ?Sized>(
    stream: &mut S,
) -> Result<(Option<FrameCtx>, Bytes), WireError> {
    let m = wire_metrics();
    match read_frame_bytes_inner(stream) {
        Ok((ctx, payload)) => {
            m.frames_received.inc();
            // Header + optional ctx + payload, mirroring what the peer
            // counted as sent.
            let ctx_len = if ctx.is_some() { CTX_BYTES as u64 } else { 0 };
            m.bytes_received.add(8 + ctx_len + payload.len() as u64);
            Ok((ctx, payload))
        }
        Err(e) => {
            match &e {
                WireError::Corrupt { .. } => m.corrupt.inc(),
                WireError::Malformed(_) => m.malformed.inc(),
                // Io and Closed are connection-lifecycle outcomes, not
                // frame damage; the retry layers count those.
                _ => {}
            }
            Err(e)
        }
    }
}

fn read_frame_bytes_inner<S: Read + ?Sized>(
    stream: &mut S,
) -> Result<(Option<FrameCtx>, Bytes), WireError> {
    let mut head = [0u8; 8];
    let mut filled = 0usize;
    while filled < head.len() {
        match stream.read(&mut head[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Err(WireError::Closed)
                } else {
                    // Connection died inside the header: a severed frame,
                    // not a clean close.
                    Err(WireError::Malformed(format!(
                        "eof after {filled} header bytes"
                    )))
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return if filled == 0 {
                    Err(WireError::Closed)
                } else {
                    Err(WireError::Malformed(format!(
                        "eof after {filled} header bytes"
                    )))
                };
            }
            Err(e) => return Err(e.into()),
        }
    }
    let len_word = u32::from_be_bytes([head[0], head[1], head[2], head[3]]);
    let expected_crc = u32::from_be_bytes([head[4], head[5], head[6], head[7]]);
    let has_ctx = len_word & CTX_FLAG != 0;
    let len = (len_word & !CTX_FLAG) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Malformed(format!("frame of {len} bytes")));
    }
    // Read ctx (if flagged) and payload in one buffer so the CRC check
    // covers exactly what the sender covered.
    let ctx_len = if has_ctx { CTX_BYTES } else { 0 };
    let mut body = vec![0u8; ctx_len + len];
    stream.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Malformed(format!("eof inside {len}-byte payload"))
        } else {
            WireError::Io(e)
        }
    })?;
    let got = crc32(&body);
    if got != expected_crc {
        return Err(WireError::Corrupt {
            expected: expected_crc,
            got,
        });
    }
    let mut body = Bytes::from(body);
    let ctx = if has_ctx {
        let cb = body.split_to(CTX_BYTES);
        Some(FrameCtx::from_bytes(&cb))
    } else {
        None
    };
    Ok((ctx, body))
}

/// Read one frame (blocking) and decode it. [`WireError::Closed`] on clean
/// EOF at a frame boundary; typed errors (never a panic or a silent
/// mis-parse) on truncated, oversized, or corrupted frames.
pub fn read_frame<T: Decode, S: Read + ?Sized>(stream: &mut S) -> Result<T, WireError> {
    read_frame_ctx(stream).map(|(_, msg)| msg)
}

/// [`read_frame`] that also surfaces the sender's trace context (if the
/// frame carried one), so receivers can adopt it and parent their spans
/// on the sender's.
pub fn read_frame_ctx<T: Decode, S: Read + ?Sized>(
    stream: &mut S,
) -> Result<(Option<FrameCtx>, T), WireError> {
    let (ctx, bytes) = read_raw_frame(stream)?;
    Ok((ctx, decode_payload(bytes)?))
}

/// Decode a full frame payload into a message, rejecting trailing bytes
/// (a decode that consumes less than the frame carried means the peer
/// and we disagree about the schema — surface it, don't ignore it).
pub fn decode_payload<T: Decode>(mut bytes: Bytes) -> Result<T, WireError> {
    let msg = T::decode(&mut bytes)?;
    if bytes.has_remaining() {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes",
            bytes.remaining()
        )));
    }
    Ok(msg)
}

/// Account an outgoing frame that bypassed [`write_frame_ctx`] (the
/// event-driven plane queues pre-encoded frames into connection write
/// buffers), keeping the `bate_wire_*` counters consistent across both
/// planes.
pub(crate) fn note_frame_sent(frame_len: usize) {
    let m = wire_metrics();
    m.frames_sent.inc();
    m.bytes_sent.add(frame_len as u64);
}

/// Incremental frame assembly for nonblocking readers: feed raw byte
/// chunks in with [`FrameAssembler::push`], pull complete frames out with
/// [`FrameAssembler::next_frame`]. This is the same wire grammar as
/// [`read_raw_frame`] — length word (with [`CTX_FLAG`]), CRC word,
/// optional context extension, payload — restated as a resumable state
/// machine, so a connection that delivers one byte per poll wakeup costs
/// buffer space, never a blocked thread. Metric accounting mirrors the
/// blocking reader: completed frames count as received, damaged ones as
/// corrupt/malformed.
#[derive(Default)]
pub struct FrameAssembler {
    buf: BytesMut,
}

impl FrameAssembler {
    pub fn new() -> FrameAssembler {
        FrameAssembler::default()
    }

    /// Append freshly read bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet assembled into a frame. Nonzero after
    /// [`FrameAssembler::next_frame`] drains means the peer is mid-frame —
    /// the signal the controller's slow-loris reaper keys on.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Extract the next complete frame, `Ok(None)` if more bytes are
    /// needed. Errors (oversized header, CRC mismatch) leave the stream
    /// unsynchronized, exactly like the blocking reader: the caller must
    /// drop the connection.
    pub fn next_frame(&mut self) -> Result<Option<(Option<FrameCtx>, Bytes)>, WireError> {
        let m = wire_metrics();
        if self.buf.len() < 8 {
            return Ok(None);
        }
        let len_word = u32::from_be_bytes(self.buf[0..4].try_into().unwrap());
        let expected_crc = u32::from_be_bytes(self.buf[4..8].try_into().unwrap());
        let has_ctx = len_word & CTX_FLAG != 0;
        let len = (len_word & !CTX_FLAG) as usize;
        if len > MAX_FRAME {
            m.malformed.inc();
            return Err(WireError::Malformed(format!("frame of {len} bytes")));
        }
        let ctx_len = if has_ctx { CTX_BYTES } else { 0 };
        let total = 8 + ctx_len + len;
        if self.buf.len() < total {
            return Ok(None);
        }
        let mut body = self.buf.split_to(total).freeze();
        body.advance(8);
        let got = crc32(&body);
        if got != expected_crc {
            m.corrupt.inc();
            return Err(WireError::Corrupt {
                expected: expected_crc,
                got,
            });
        }
        m.frames_received.inc();
        m.bytes_received.add(total as u64);
        let ctx = if has_ctx {
            let cb = body.split_to(CTX_BYTES);
            Some(FrameCtx::from_bytes(&cb))
        } else {
            None
        };
        Ok(Some((ctx, body)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = BytesMut::new();
        v.encode(&mut buf);
        let mut bytes = buf.freeze();
        let back = T::decode(&mut bytes).unwrap();
        assert_eq!(v, back);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(std::f64::consts::PI);
        roundtrip(f64::NEG_INFINITY);
        roundtrip(true);
        roundtrip(false);
        roundtrip("hello → world".to_string());
        roundtrip(String::new());
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn crc32_known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut buf = BytesMut::new();
        12345u64.encode(&mut buf);
        let mut short = buf.freeze().slice(0..4);
        assert!(matches!(
            u64::decode(&mut short),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn decode_rejects_bad_bool() {
        let mut bytes = Bytes::from_static(&[7]);
        assert!(matches!(
            bool::decode(&mut bytes),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn corrupted_payload_is_detected() {
        let frame = encode_frame(&0xDEAD_BEEF_0BAD_F00Du64).unwrap();
        // Flip one payload bit.
        let mut bad = frame.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        let err = read_frame::<u64, _>(&mut &bad[..]).unwrap_err();
        assert!(matches!(err, WireError::Corrupt { .. }), "got {err}");
        // The pristine frame still decodes.
        assert_eq!(read_frame::<u64, _>(&mut &frame[..]).unwrap(), 0xDEAD_BEEF_0BAD_F00Du64);
    }

    #[test]
    fn oversized_length_header_is_rejected_before_allocation() {
        // A header claiming a 2 GiB payload must error out immediately,
        // not hang waiting for bytes or attempt the allocation.
        let mut raw = Vec::new();
        raw.extend_from_slice(&(2u32 << 30).to_be_bytes());
        raw.extend_from_slice(&0u32.to_be_bytes());
        let err = read_frame::<u64, _>(&mut &raw[..]).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "got {err}");
    }

    #[test]
    fn truncated_frame_returns_typed_error_not_hang() {
        // A frame severed mid-payload: the reader sees EOF inside the
        // payload and reports Malformed (pre-hardening this mis-read
        // garbage lengths or propagated a bare Io error).
        let frame = encode_frame(&vec![1u64, 2, 3]).unwrap();
        let cut = &frame[..frame.len() - 5];
        let err = read_frame::<Vec<u64>, _>(&mut &cut[..]).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "got {err}");
        // Severed inside the header (not at a frame boundary) is also
        // distinguished from a clean close.
        let err = read_frame::<Vec<u64>, _>(&mut &frame[..3]).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "got {err}");
        // A clean close at a boundary is Closed.
        let err = read_frame::<Vec<u64>, _>(&mut &frame[..0]).unwrap_err();
        assert!(matches!(err, WireError::Closed), "got {err}");
    }

    #[test]
    fn ctx_frame_roundtrips_and_legacy_frames_read_as_none() {
        let ctx = FrameCtx {
            trace_id: 0x1122_3344_5566_7788,
            span_id: 0x99AA_BBCC_DDEE_FF00,
        };
        let frame = encode_frame_ctx(&vec![7u64, 8, 9], Some(ctx)).unwrap();
        // The flag bit is set in the length word, and the ctx bytes sit
        // between the header and the payload.
        assert_ne!(frame[0] & 0x80, 0);
        let (got_ctx, msg): (_, Vec<u64>) = read_frame_ctx(&mut &frame[..]).unwrap();
        assert_eq!(got_ctx, Some(ctx));
        assert_eq!(msg, vec![7, 8, 9]);
        // Ctx-blind readers still decode the same payload.
        let msg: Vec<u64> = read_frame(&mut &frame[..]).unwrap();
        assert_eq!(msg, vec![7, 8, 9]);
        // Legacy frames (no flag) surface `None`.
        let legacy = encode_frame(&vec![7u64, 8, 9]).unwrap();
        assert_eq!(legacy[0] & 0x80, 0);
        let (got_ctx, msg): (_, Vec<u64>) = read_frame_ctx(&mut &legacy[..]).unwrap();
        assert!(got_ctx.is_none());
        assert_eq!(msg, vec![7, 8, 9]);
    }

    #[test]
    fn ctx_bytes_are_crc_protected() {
        let ctx = FrameCtx {
            trace_id: 42,
            span_id: 43,
        };
        let frame = encode_frame_ctx(&1u64, Some(ctx)).unwrap();
        // Flip a bit inside the ctx extension (bytes 8..24).
        let mut bad = frame.clone();
        bad[10] ^= 0x01;
        let err = read_frame_ctx::<u64, _>(&mut &bad[..]).unwrap_err();
        assert!(matches!(err, WireError::Corrupt { .. }), "got {err}");
    }

    #[test]
    fn frames_over_tcp() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let v: Vec<u64> = read_frame(&mut conn).unwrap();
            write_frame(&mut conn, &v.iter().sum::<u64>()).unwrap();
            // Next read observes the client's clean close.
            assert!(matches!(
                read_frame::<u64, _>(&mut conn),
                Err(WireError::Closed)
            ));
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        write_frame(&mut stream, &vec![1u64, 2, 3]).unwrap();
        let sum: u64 = read_frame(&mut stream).unwrap();
        assert_eq!(sum, 6);
        drop(stream);
        handle.join().unwrap();
    }

    #[test]
    fn assembler_reassembles_byte_by_byte() {
        // The slow-loris shape: frames arriving one byte at a time must
        // assemble into exactly the frames the blocking reader would see.
        let ctx = FrameCtx {
            trace_id: 11,
            span_id: 22,
        };
        let mut stream_bytes = encode_frame_ctx(&vec![1u64, 2, 3], Some(ctx)).unwrap();
        stream_bytes.extend(encode_frame(&"second".to_string()).unwrap());

        let mut asm = FrameAssembler::new();
        let mut got: Vec<(Option<FrameCtx>, Bytes)> = Vec::new();
        for b in stream_bytes {
            asm.push(&[b]);
            while let Some(frame) = asm.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, Some(ctx));
        assert_eq!(
            decode_payload::<Vec<u64>>(got[0].1.clone()).unwrap(),
            vec![1, 2, 3]
        );
        assert!(got[1].0.is_none());
        assert_eq!(
            decode_payload::<String>(got[1].1.clone()).unwrap(),
            "second"
        );
        assert_eq!(asm.buffered(), 0);
    }

    #[test]
    fn assembler_reports_partial_frames_and_damage() {
        let frame = encode_frame(&vec![9u64; 4]).unwrap();
        let mut asm = FrameAssembler::new();
        asm.push(&frame[..frame.len() - 1]);
        assert!(asm.next_frame().unwrap().is_none(), "incomplete frame");
        assert!(asm.buffered() > 0, "mid-frame bytes are visible");
        asm.push(&frame[frame.len() - 1..]);
        assert!(asm.next_frame().unwrap().is_some());
        assert_eq!(asm.buffered(), 0);

        // A corrupted payload surfaces as Corrupt, same as the blocking
        // reader.
        let mut bad = frame.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        let mut asm = FrameAssembler::new();
        asm.push(&bad);
        assert!(matches!(asm.next_frame(), Err(WireError::Corrupt { .. })));

        // An oversized length header (64 MiB > MAX_FRAME, flag bit clear)
        // is rejected before buffering it.
        let mut asm = FrameAssembler::new();
        let mut raw = (64u32 << 20).to_be_bytes().to_vec();
        raw.extend_from_slice(&0u32.to_be_bytes());
        asm.push(&raw);
        assert!(matches!(asm.next_frame(), Err(WireError::Malformed(_))));
    }

    #[test]
    fn transport_object_safety() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let token: u64 = read_frame(&mut conn).unwrap();
            write_frame(&mut conn, &token).unwrap();
        });
        let stream = TcpStream::connect(addr).unwrap();
        let mut boxed: Box<dyn Transport> = Box::new(stream);
        let mut clone = boxed.try_clone_box().unwrap();
        write_frame(&mut *boxed, &99u64).unwrap();
        let echoed: u64 = read_frame(&mut *clone).unwrap();
        assert_eq!(echoed, 99);
        handle.join().unwrap();
    }
}
