//! Length-prefixed binary framing and primitive codecs.
//!
//! Frame layout: `u32` big-endian payload length, then the payload. The
//! payload is encoded with the [`Encode`]/[`Decode`] traits below — a small
//! hand-rolled binary format (fixed-width integers big-endian, f64 as IEEE
//! bits, strings and vectors length-prefixed) so the workspace needs no
//! serialization framework beyond `bytes`.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Maximum accepted frame size; anything larger is a protocol violation.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Errors surfaced by the codec.
#[derive(Debug)]
pub enum WireError {
    Io(io::Error),
    /// Frame exceeded [`MAX_FRAME`] or was otherwise malformed.
    Malformed(String),
    /// The peer closed the connection cleanly.
    Closed,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io error: {e}"),
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
            WireError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Encode a value into a buffer.
pub trait Encode {
    fn encode(&self, buf: &mut BytesMut);
}

/// Decode a value from a buffer.
pub trait Decode: Sized {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError>;
}

fn need(buf: &Bytes, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::Malformed(format!(
            "need {n} bytes, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

macro_rules! int_codec {
    ($ty:ty, $put:ident, $get:ident, $n:expr) => {
        impl Encode for $ty {
            fn encode(&self, buf: &mut BytesMut) {
                buf.$put(*self);
            }
        }
        impl Decode for $ty {
            fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
                need(buf, $n)?;
                Ok(buf.$get())
            }
        }
    };
}

int_codec!(u8, put_u8, get_u8, 1);
int_codec!(u32, put_u32, get_u32, 4);
int_codec!(u64, put_u64, get_u64, 8);

impl Encode for f64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_f64(*self);
    }
}

impl Decode for f64 {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 8)?;
        Ok(buf.get_f64())
    }
}

impl Encode for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self as u8);
    }
}

impl Decode for bool {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 1)?;
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::Malformed(format!("bad bool byte {b}"))),
        }
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        buf.put_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = u32::decode(buf)? as usize;
        need(buf, len)?;
        let bytes = buf.split_to(len);
        String::from_utf8(bytes.to_vec())
            .map_err(|e| WireError::Malformed(format!("bad utf8: {e}")))
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = u32::decode(buf)? as usize;
        if len > MAX_FRAME {
            return Err(WireError::Malformed(format!("vector of {len} elements")));
        }
        let mut out = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

/// Write one frame (blocking).
pub fn write_frame<T: Encode>(stream: &mut TcpStream, msg: &T) -> Result<(), WireError> {
    let mut payload = BytesMut::new();
    msg.encode(&mut payload);
    if payload.len() > MAX_FRAME {
        return Err(WireError::Malformed(format!(
            "frame too large: {}",
            payload.len()
        )));
    }
    let mut head = [0u8; 4];
    head.copy_from_slice(&(payload.len() as u32).to_be_bytes());
    stream.write_all(&head)?;
    stream.write_all(&payload)?;
    stream.flush()?;
    Ok(())
}

/// Read one frame (blocking). [`WireError::Closed`] on clean EOF at a frame
/// boundary.
pub fn read_frame<T: Decode>(stream: &mut TcpStream) -> Result<T, WireError> {
    let mut head = [0u8; 4];
    match stream.read_exact(&mut head) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Err(WireError::Closed),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_be_bytes(head) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Malformed(format!("frame of {len} bytes")));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    let mut bytes = Bytes::from(payload);
    let msg = T::decode(&mut bytes)?;
    if bytes.has_remaining() {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes",
            bytes.remaining()
        )));
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = BytesMut::new();
        v.encode(&mut buf);
        let mut bytes = buf.freeze();
        let back = T::decode(&mut bytes).unwrap();
        assert_eq!(v, back);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(3.141592653589793f64);
        roundtrip(f64::NEG_INFINITY);
        roundtrip(true);
        roundtrip(false);
        roundtrip("hello → world".to_string());
        roundtrip(String::new());
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut buf = BytesMut::new();
        12345u64.encode(&mut buf);
        let mut short = buf.freeze().slice(0..4);
        assert!(matches!(
            u64::decode(&mut short),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn decode_rejects_bad_bool() {
        let mut bytes = Bytes::from_static(&[7]);
        assert!(matches!(
            bool::decode(&mut bytes),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn frames_over_tcp() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let v: Vec<u64> = read_frame(&mut conn).unwrap();
            write_frame(&mut conn, &v.iter().sum::<u64>()).unwrap();
            // Next read observes the client's clean close.
            assert!(matches!(
                read_frame::<u64>(&mut conn),
                Err(WireError::Closed)
            ));
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        write_frame(&mut stream, &vec![1u64, 2, 3]).unwrap();
        let sum: u64 = read_frame(&mut stream).unwrap();
        assert_eq!(sum, 6);
        drop(stream);
        handle.join().unwrap();
    }
}
