//! The central controller (§4): admission control, scheduling, failure
//! recovery, and broker coordination behind a TCP listener.

use crate::proto::{FlowEntry, Message};
use crate::wire::{read_frame, write_frame, WireError};
use bate_core::admission::{self, AdmissionOutcome};
use bate_core::recovery::greedy::greedy_recovery;
use bate_core::scheduling::schedule_hardened as schedule;
use bate_core::{Allocation, BaDemand, DemandId, TeContext};
use bate_net::{GroupId, LinkSet, Scenario, ScenarioSet, Topology};
use bate_routing::{RoutingScheme, TunnelSet};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Controller parameters.
pub struct ControllerConfig {
    pub topo: Topology,
    pub routing: RoutingScheme,
    /// Scenario pruning depth `y` for the scheduling LP.
    pub max_failures: usize,
    /// Period of the Online Scheduler's automatic rescheduling rounds
    /// (§3.3 suggests minutes in production; `None` disables the thread —
    /// rounds then only happen via [`Controller::run_schedule_round`]).
    pub schedule_interval: Option<Duration>,
}

impl ControllerConfig {
    /// A controller with manual scheduling rounds (what tests and demos
    /// want — deterministic timing).
    pub fn manual(topo: Topology, routing: RoutingScheme, max_failures: usize) -> Self {
        ControllerConfig {
            topo,
            routing,
            max_failures,
            schedule_interval: None,
        }
    }
}

struct Shared {
    topo: Topology,
    tunnels: TunnelSet,
    scenarios: ScenarioSet,
    state: Mutex<CtrlState>,
    shutdown: AtomicBool,
}

struct CtrlState {
    demands: Vec<BaDemand>,
    allocation: Allocation,
    failed: LinkSet,
    brokers: HashMap<String, Arc<Mutex<TcpStream>>>,
}

impl Shared {
    fn ctx(&self) -> TeContext<'_> {
        TeContext::new(&self.topo, &self.tunnels, &self.scenarios)
    }
}

/// A running controller. Shuts down when dropped.
pub struct Controller {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    scheduler_thread: Option<JoinHandle<()>>,
}

impl Controller {
    /// Bind to an ephemeral localhost port and start serving.
    pub fn start(config: ControllerConfig) -> io::Result<Controller> {
        let tunnels = TunnelSet::compute(&config.topo, config.routing);
        let scenarios = ScenarioSet::enumerate(&config.topo, config.max_failures);
        let failed = LinkSet::new(config.topo.num_groups());
        let shared = Arc::new(Shared {
            topo: config.topo,
            tunnels,
            scenarios,
            state: Mutex::new(CtrlState {
                demands: Vec::new(),
                allocation: Allocation::new(),
                failed,
                brokers: HashMap::new(),
            }),
            shutdown: AtomicBool::new(false),
        });

        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            while !accept_shared.shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nodelay(true).ok();
                        let conn_shared = Arc::clone(&accept_shared);
                        std::thread::spawn(move || {
                            connection_loop(conn_shared, stream);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });

        // The Online Scheduler thread (§4): periodic rescheduling rounds.
        let scheduler_thread = config.schedule_interval.map(|interval| {
            let sched_shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                // Wake frequently so shutdown stays responsive even with
                // long intervals.
                let tick = Duration::from_millis(20).min(interval);
                let mut elapsed = Duration::ZERO;
                while !sched_shared.shutdown.load(Ordering::Relaxed) {
                    std::thread::sleep(tick);
                    elapsed += tick;
                    if elapsed >= interval {
                        elapsed = Duration::ZERO;
                        schedule_round(&sched_shared);
                    }
                }
            })
        });

        Ok(Controller {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            scheduler_thread,
        })
    }

    /// Address clients and brokers connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of currently admitted demands.
    pub fn admitted_count(&self) -> usize {
        self.shared.state.lock().demands.len()
    }

    /// Number of registered brokers.
    pub fn broker_count(&self) -> usize {
        self.shared.state.lock().brokers.len()
    }

    /// Total rate currently allocated to a demand.
    pub fn allocated_rate(&self, id: u64) -> f64 {
        let state = self.shared.state.lock();
        state
            .allocation
            .flows_of(DemandId(id))
            .map(|(_, f)| f)
            .sum()
    }

    /// Run a scheduling round now (the Online Scheduler also does this
    /// periodically when `schedule_interval` is set).
    pub fn run_schedule_round(&self) {
        schedule_round(&self.shared);
    }
}

/// One Online Scheduler round: re-optimize every admitted demand and push
/// the fresh allocations to the brokers. Skipped while a failure is in
/// effect (the recovery allocation stays authoritative until repair).
fn schedule_round(shared: &Arc<Shared>) {
    let ctx = shared.ctx();
    let mut state = shared.state.lock();
    if state.demands.is_empty() || !state.failed.is_empty() {
        return;
    }
    if let Ok(res) = schedule(&ctx, &state.demands) {
        state.allocation = res.allocation;
        push_all_allocations(&ctx, &mut state);
    }
}

impl Drop for Controller {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            t.join().ok();
        }
        if let Some(t) = self.scheduler_thread.take() {
            t.join().ok();
        }
    }
}

fn connection_loop(shared: Arc<Shared>, mut stream: TcpStream) {
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let msg: Message = match read_frame(&mut stream) {
            Ok(m) => m,
            Err(WireError::Closed) => return,
            Err(_) => return,
        };
        match msg {
            Message::SubmitDemand {
                id,
                src,
                dst,
                bandwidth,
                beta,
                price,
                refund_ratio,
            } => {
                let admitted = handle_submit(
                    &shared,
                    id,
                    &src,
                    &dst,
                    bandwidth,
                    beta,
                    price,
                    refund_ratio,
                );
                if write_frame(&mut stream, &Message::AdmissionReply { id, admitted }).is_err() {
                    return;
                }
            }
            Message::WithdrawDemand { id } => {
                let ctx = shared.ctx();
                let mut state = shared.state.lock();
                state.demands.retain(|d| d.id.0 != id);
                state.allocation.remove_demand(DemandId(id));
                broadcast(&mut state, &Message::RemoveAllocation { demand: id });
                let _ = ctx;
            }
            Message::RegisterBroker { dc } => {
                if let Ok(clone) = stream.try_clone() {
                    let mut state = shared.state.lock();
                    state.brokers.insert(dc, Arc::new(Mutex::new(clone)));
                }
            }
            Message::LinkReport { group, up } => {
                handle_link_report(&shared, group as usize, up);
            }
            Message::Ping { token } => {
                if write_frame(&mut stream, &Message::Pong { token }).is_err() {
                    return;
                }
            }
            // Stats are accepted and currently only acknowledged by
            // silence; a production controller would aggregate them.
            Message::StatsReport { .. } => {}
            // Messages a controller never receives.
            Message::AdmissionReply { .. }
            | Message::InstallAllocation { .. }
            | Message::RemoveAllocation { .. }
            | Message::Pong { .. } => {}
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_submit(
    shared: &Arc<Shared>,
    id: u64,
    src: &str,
    dst: &str,
    bandwidth: f64,
    beta: f64,
    price: f64,
    refund_ratio: f64,
) -> bool {
    let (Some(s), Some(d)) = (shared.topo.find_node(src), shared.topo.find_node(dst)) else {
        return false;
    };
    let Some(pair) = shared.tunnels.pair_index(s, d) else {
        return false;
    };
    if bandwidth <= 0.0 || !(0.0..=1.0).contains(&beta) {
        return false;
    }
    let demand = BaDemand {
        id: DemandId(id),
        bandwidth: vec![(pair, bandwidth)],
        beta,
        price,
        refund_ratio: refund_ratio.clamp(0.0, 1.0),
    };

    let ctx = shared.ctx();
    let mut state = shared.state.lock();
    if state.demands.iter().any(|d| d.id.0 == id) {
        return false; // duplicate id
    }
    match admission::admit(&ctx, &state.demands, &state.allocation, &demand) {
        AdmissionOutcome::Admitted { allocation, .. } => {
            for (t, f) in allocation.flows_of(demand.id) {
                state.allocation.set(demand.id, t, f);
            }
            state.demands.push(demand.clone());
            push_demand_allocation(&ctx, &mut state, demand.id);
            true
        }
        AdmissionOutcome::Rejected => false,
    }
}

fn handle_link_report(shared: &Arc<Shared>, group: usize, up: bool) {
    let ctx = shared.ctx();
    let mut state = shared.state.lock();
    if group >= shared.topo.num_groups() {
        return;
    }
    if up {
        state.failed.remove(group);
    } else {
        state.failed.insert(group);
    }
    if state.demands.is_empty() {
        return;
    }
    if state.failed.is_empty() {
        // Everything healthy again: go back to a guaranteed schedule.
        if let Ok(res) = schedule(&ctx, &state.demands) {
            state.allocation = res.allocation;
        }
    } else {
        // Failure in effect: reroute with Algorithm 2.
        let scenario = Scenario {
            failed: state.failed.clone(),
            probability: 0.0,
        };
        let out = greedy_recovery(&ctx, &state.demands, &scenario);
        state.allocation = out.allocation;
    }
    push_all_allocations(&ctx, &mut state);
}

/// Send one demand's current allocation to every broker.
fn push_demand_allocation(ctx: &TeContext, state: &mut CtrlState, id: DemandId) {
    let entries: Vec<FlowEntry> = state
        .allocation
        .flows_of(id)
        .map(|(t, f)| FlowEntry {
            pair: t.pair as u32,
            tunnel: t.tunnel as u32,
            rate: f,
        })
        .collect();
    let _ = ctx;
    broadcast(
        state,
        &Message::InstallAllocation {
            demand: id.0,
            entries,
        },
    );
}

fn push_all_allocations(ctx: &TeContext, state: &mut CtrlState) {
    let ids: Vec<DemandId> = state.demands.iter().map(|d| d.id).collect();
    for id in ids {
        push_demand_allocation(ctx, state, id);
    }
}

fn broadcast(state: &mut CtrlState, msg: &Message) {
    let mut dead: Vec<String> = Vec::new();
    for (dc, stream) in &state.brokers {
        let mut s = stream.lock();
        if write_frame(&mut *s, msg).is_err() {
            dead.push(dc.clone());
        }
    }
    for dc in dead {
        state.brokers.remove(&dc);
    }
}

/// Convenience: the failed fate groups a scenario encodes (used by demos).
pub fn failed_groups_of(scenario: &Scenario) -> Vec<GroupId> {
    scenario.failed.iter().map(GroupId).collect()
}
