//! The central controller (§4): admission control, scheduling, failure
//! recovery, and broker coordination behind a TCP listener.
//!
//! Hardened against lossy control channels: demand ids double as
//! idempotency keys. A retried `SubmitDemand` (same id, same content)
//! replays the original admission verdict and re-pushes the allocation —
//! it is never double-counted, and never spuriously refused the way the
//! pre-hardening duplicate check refused it. Withdraws are acknowledged
//! and idempotent, and a broker that re-registers after a severed
//! connection is immediately re-synced with every live allocation.

use crate::proto::{FlowEntry, Message};
use crate::wire::{read_frame_ctx, write_frame, write_frame_ctx, FrameCtx, WireError};
use bate_core::admission::{self, AdmissionOutcome};
use bate_core::clock::{Clock, SystemClock};
use bate_core::recovery::greedy::greedy_recovery;
use bate_core::scheduling::schedule_hardened as schedule;
use bate_core::{Allocation, BaDemand, DemandId, TeContext};
use bate_net::{GroupId, LinkSet, Scenario, ScenarioSet, Topology};
use bate_routing::{RoutingScheme, TunnelSet};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Registry handles for the controller metric family. Connection handlers
/// run on per-connection threads, so these are process-wide counters; the
/// trace events below them carry the per-message detail.
struct CtrlMetrics {
    submits: Arc<bate_obs::Counter>,
    replay_hits: Arc<bate_obs::Counter>,
    withdraws: Arc<bate_obs::Counter>,
    link_reports: Arc<bate_obs::Counter>,
    rounds: Arc<bate_obs::Counter>,
    stats_queries: Arc<bate_obs::Counter>,
}

fn ctrl_metrics() -> &'static CtrlMetrics {
    static M: OnceLock<CtrlMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = bate_obs::Registry::global();
        CtrlMetrics {
            submits: r.counter("bate_ctrl_submits_total"),
            replay_hits: r.counter("bate_ctrl_idempotent_replay_hits_total"),
            withdraws: r.counter("bate_ctrl_withdraws_total"),
            link_reports: r.counter("bate_ctrl_link_reports_total"),
            rounds: r.counter("bate_ctrl_schedule_rounds_total"),
            stats_queries: r.counter("bate_ctrl_stats_queries_total"),
        }
    })
}

/// Controller parameters.
pub struct ControllerConfig {
    pub topo: Topology,
    pub routing: RoutingScheme,
    /// Scenario pruning depth `y` for the scheduling LP.
    pub max_failures: usize,
    /// Period of the Online Scheduler's automatic rescheduling rounds
    /// (§3.3 suggests minutes in production; `None` disables the thread —
    /// rounds then only happen via [`Controller::run_schedule_round`]).
    pub schedule_interval: Option<Duration>,
    /// Time source for the scheduler thread (tests inject a simulated
    /// clock; everything else uses the system clock).
    pub clock: Arc<dyn Clock>,
    /// Pre-hardening duplicate handling: a repeated SubmitDemand id is
    /// refused outright instead of replaying the original verdict. Kept
    /// ONLY so regression tests can demonstrate the retry bug this
    /// shipped with; leave `false`.
    pub legacy_duplicate_handling: bool,
}

impl ControllerConfig {
    /// A controller with manual scheduling rounds (what tests and demos
    /// want — deterministic timing).
    pub fn manual(topo: Topology, routing: RoutingScheme, max_failures: usize) -> Self {
        ControllerConfig {
            topo,
            routing,
            max_failures,
            schedule_interval: None,
            clock: SystemClock::shared(),
            legacy_duplicate_handling: false,
        }
    }
}

/// Cached verdict for one demand id (the idempotency record).
#[derive(Debug, Clone, Copy)]
struct SubmitRecord {
    /// Hash of the submitted fields: a retry matches, an id collision
    /// (same id, different demand) does not.
    fingerprint: u64,
    admitted: bool,
    withdrawn: bool,
}

struct Shared {
    topo: Topology,
    tunnels: TunnelSet,
    scenarios: ScenarioSet,
    state: Mutex<CtrlState>,
    shutdown: AtomicBool,
    legacy_duplicate_handling: bool,
}

struct CtrlState {
    demands: Vec<BaDemand>,
    allocation: Allocation,
    failed: LinkSet,
    brokers: HashMap<String, Arc<Mutex<TcpStream>>>,
    outcomes: HashMap<u64, SubmitRecord>,
}

impl Shared {
    fn ctx(&self) -> TeContext<'_> {
        TeContext::new(&self.topo, &self.tunnels, &self.scenarios)
    }
}

/// A running controller. Shuts down when dropped.
pub struct Controller {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    scheduler_thread: Option<JoinHandle<()>>,
}

impl Controller {
    /// Bind to an ephemeral localhost port and start serving.
    pub fn start(config: ControllerConfig) -> io::Result<Controller> {
        // Pre-register the scheduler's metric families (including the
        // rowgen counters) so `stats` renders them at zero before the
        // first solve instead of omitting them.
        bate_core::scheduling::register_metrics();
        // Same for the incremental warm-start scheduler's `bate_warm_*`
        // families (DESIGN.md §5e): controllers that never churn still
        // export the counters at zero.
        bate_core::incremental::register_metrics();
        // And the recovery-storm family (`bate_storm_*`, DESIGN.md §6x):
        // storms are driven by the sim workload, but the controller owns
        // the exposition surface, so the family must render at zero here.
        bate_core::recovery::register_storm_metrics();
        let tunnels = TunnelSet::compute(&config.topo, config.routing);
        let scenarios = ScenarioSet::enumerate(&config.topo, config.max_failures);
        let failed = LinkSet::new(config.topo.num_groups());
        let shared = Arc::new(Shared {
            topo: config.topo,
            tunnels,
            scenarios,
            state: Mutex::new(CtrlState {
                demands: Vec::new(),
                allocation: Allocation::new(),
                failed,
                brokers: HashMap::new(),
                outcomes: HashMap::new(),
            }),
            shutdown: AtomicBool::new(false),
            legacy_duplicate_handling: config.legacy_duplicate_handling,
        });

        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            while !accept_shared.shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nodelay(true).ok();
                        let conn_shared = Arc::clone(&accept_shared);
                        std::thread::spawn(move || {
                            connection_loop(conn_shared, stream);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });

        // The Online Scheduler thread (§4): periodic rescheduling rounds,
        // paced by the injected clock.
        let scheduler_thread = config.schedule_interval.map(|interval| {
            let sched_shared = Arc::clone(&shared);
            let clock = Arc::clone(&config.clock);
            std::thread::spawn(move || {
                // Wake frequently so shutdown stays responsive even with
                // long intervals.
                let tick = Duration::from_millis(20).min(interval);
                let mut elapsed = Duration::ZERO;
                while !sched_shared.shutdown.load(Ordering::Relaxed) {
                    clock.sleep(tick);
                    elapsed += tick;
                    if elapsed >= interval {
                        elapsed = Duration::ZERO;
                        schedule_round(&sched_shared);
                    }
                }
            })
        });

        Ok(Controller {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            scheduler_thread,
        })
    }

    /// Address clients and brokers connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of currently admitted demands.
    pub fn admitted_count(&self) -> usize {
        self.shared.state.lock().demands.len()
    }

    /// Number of registered brokers.
    pub fn broker_count(&self) -> usize {
        self.shared.state.lock().brokers.len()
    }

    /// Block until at least `n` brokers are registered (replaces the blind
    /// sleeps the tests used to need after `Broker::connect`). Returns
    /// false on timeout.
    pub fn wait_for_brokers(&self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.broker_count() >= n {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Total rate currently allocated to a demand.
    pub fn allocated_rate(&self, id: u64) -> f64 {
        let state = self.shared.state.lock();
        state
            .allocation
            .flows_of(DemandId(id))
            .map(|(_, f)| f)
            .sum()
    }

    /// Whether a demand id was admitted, per the idempotency record
    /// (`None` if the id was never decided).
    pub fn admission_verdict(&self, id: u64) -> Option<bool> {
        self.shared
            .state
            .lock()
            .outcomes
            .get(&id)
            .map(|r| r.admitted && !r.withdrawn)
    }

    /// Run a scheduling round now (the Online Scheduler also does this
    /// periodically when `schedule_interval` is set).
    pub fn run_schedule_round(&self) {
        schedule_round(&self.shared);
    }
}

/// One Online Scheduler round: re-optimize every admitted demand and push
/// the fresh allocations to the brokers. Skipped while a failure is in
/// effect (the recovery allocation stays authoritative until repair).
fn schedule_round(shared: &Arc<Shared>) {
    let ctx = shared.ctx();
    let mut state = shared.state.lock();
    if state.demands.is_empty() || !state.failed.is_empty() {
        return;
    }
    if let Ok(res) = schedule(&ctx, &state.demands) {
        ctrl_metrics().rounds.inc();
        bate_obs::info!(
            "ctrl.schedule_round",
            demands = state.demands.len(),
            lp_iterations = res.solve_stats.iterations(),
            lp_pivots = res.solve_stats.pivots,
        );
        state.allocation = res.allocation;
        push_all_allocations(&ctx, &mut state);
    }
    // One SLO sample per scheduling round: burn rates evolve at round
    // granularity, matching the paper's per-round BA-guarantee framing.
    bate_obs::SloEngine::global().record_sample(bate_obs::Registry::global());
}

impl Drop for Controller {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            t.join().ok();
        }
        if let Some(t) = self.scheduler_thread.take() {
            t.join().ok();
        }
    }
}

/// Stable fingerprint of a submission's content, so a retried id can be
/// told apart from an id collision (FNV-1a over the encoded fields).
fn submit_fingerprint(src: &str, dst: &str, bandwidth: f64, beta: f64, price: f64, refund: f64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    eat(src.as_bytes());
    eat(&[0xFF]);
    eat(dst.as_bytes());
    eat(&bandwidth.to_bits().to_be_bytes());
    eat(&beta.to_bits().to_be_bytes());
    eat(&price.to_bits().to_be_bytes());
    eat(&refund.to_bits().to_be_bytes());
    h
}

fn connection_loop(shared: Arc<Shared>, mut stream: TcpStream) {
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let (rctx, msg): (Option<FrameCtx>, Message) = match read_frame_ctx(&mut stream) {
            Ok(m) => m,
            Err(WireError::Closed) => return,
            // Malformed, corrupt, or truncated frames leave the byte
            // stream unsynchronized: drop the connection (typed error, no
            // panic) and let the peer's retry policy redial.
            Err(_) => return,
        };
        match msg {
            Message::SubmitDemand {
                id,
                src,
                dst,
                bandwidth,
                beta,
                price,
                refund_ratio,
            } => {
                // Adopt the client's span so the admission pipeline (and
                // the LP solve under it) parents on the submit that
                // caused it — this is what links client → controller →
                // solver phases under one trace_id.
                let _adopted = rctx.map(|c| bate_obs::context::adopt("ctrl.submit", c.trace_id, c.span_id));
                let admitted = handle_submit(
                    &shared,
                    id,
                    &src,
                    &dst,
                    bandwidth,
                    beta,
                    price,
                    refund_ratio,
                );
                let reply = Message::AdmissionReply { id, admitted };
                if write_frame_ctx(&mut stream, &reply, FrameCtx::current()).is_err() {
                    return;
                }
            }
            Message::WithdrawDemand { id } => {
                let _adopted = rctx.map(|c| bate_obs::context::adopt("ctrl.withdraw", c.trace_id, c.span_id));
                let ctx = shared.ctx();
                {
                    ctrl_metrics().withdraws.inc();
                    let mut state = shared.state.lock();
                    let was_present = state.demands.iter().any(|d| d.id.0 == id);
                    state.demands.retain(|d| d.id.0 != id);
                    state.allocation.remove_demand(DemandId(id));
                    // Tombstone the id: a stale submit retry arriving after
                    // the withdraw must not re-admit it.
                    state
                        .outcomes
                        .entry(id)
                        .and_modify(|r| r.withdrawn = true)
                        .or_insert(SubmitRecord {
                            fingerprint: 0,
                            admitted: false,
                            withdrawn: true,
                        });
                    if was_present {
                        broadcast(&mut state, &Message::RemoveAllocation { demand: id });
                    }
                }
                let _ = ctx;
                if write_frame_ctx(&mut stream, &Message::WithdrawAck { id }, FrameCtx::current())
                    .is_err()
                {
                    return;
                }
            }
            Message::RegisterBroker { dc } => {
                if let Ok(clone) = stream.try_clone() {
                    let ctx = shared.ctx();
                    let mut state = shared.state.lock();
                    state.brokers.insert(dc.clone(), Arc::new(Mutex::new(clone)));
                    // Re-sync: a broker (re)connecting after a severed
                    // link must converge to the live allocation set.
                    let ids: Vec<DemandId> = state.demands.iter().map(|d| d.id).collect();
                    for id in ids {
                        let msg = install_message(&state, id);
                        if let Some(stream) = state.brokers.get(&dc) {
                            let mut s = stream.lock();
                            if write_frame(&mut *s, &msg).is_err() {
                                break;
                            }
                        }
                    }
                    let _ = ctx;
                }
            }
            Message::LinkReport { group, up } => {
                ctrl_metrics().link_reports.inc();
                bate_obs::warn!("ctrl.link_report", group = group, up = up);
                handle_link_report(&shared, group as usize, up);
            }
            Message::Ping { token } => {
                if write_frame(&mut stream, &Message::Pong { token }).is_err() {
                    return;
                }
            }
            Message::StatsQuery => {
                ctrl_metrics().stats_queries.inc();
                let text = bate_obs::Registry::global().render_prometheus();
                if write_frame(&mut stream, &Message::StatsText { text }).is_err() {
                    return;
                }
            }
            Message::StatsJsonQuery { prefix } => {
                ctrl_metrics().stats_queries.inc();
                let text = bate_obs::Registry::global()
                    .snapshot_jsonl_filtered(|name, _| name.starts_with(prefix.as_str()));
                if write_frame(&mut stream, &Message::StatsText { text }).is_err() {
                    return;
                }
            }
            Message::TraceQuery { trace_id } => {
                ctrl_metrics().stats_queries.inc();
                let events = bate_obs::flight::ring_events();
                let text = bate_obs::flight::render_tree(&events, trace_id);
                if write_frame(&mut stream, &Message::StatsText { text }).is_err() {
                    return;
                }
            }
            Message::SloQuery => {
                ctrl_metrics().stats_queries.inc();
                let text = bate_obs::SloEngine::global().render_report();
                if write_frame(&mut stream, &Message::StatsText { text }).is_err() {
                    return;
                }
            }
            // Stats are accepted and currently only acknowledged by
            // silence; a production controller would aggregate them.
            Message::StatsReport { .. } => {}
            // Messages a controller never receives.
            Message::AdmissionReply { .. }
            | Message::WithdrawAck { .. }
            | Message::InstallAllocation { .. }
            | Message::RemoveAllocation { .. }
            | Message::StatsText { .. }
            | Message::Pong { .. } => {}
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_submit(
    shared: &Arc<Shared>,
    id: u64,
    src: &str,
    dst: &str,
    bandwidth: f64,
    beta: f64,
    price: f64,
    refund_ratio: f64,
) -> bool {
    let fingerprint = submit_fingerprint(src, dst, bandwidth, beta, price, refund_ratio);
    ctrl_metrics().submits.inc();

    let (Some(s), Some(d)) = (shared.topo.find_node(src), shared.topo.find_node(dst)) else {
        return false;
    };
    let Some(pair) = shared.tunnels.pair_index(s, d) else {
        return false;
    };
    if bandwidth <= 0.0 || !(0.0..=1.0).contains(&beta) {
        return false;
    }
    let demand = BaDemand {
        id: DemandId(id),
        bandwidth: vec![(pair, bandwidth)],
        beta,
        price,
        refund_ratio: refund_ratio.clamp(0.0, 1.0),
    };

    let ctx = shared.ctx();
    let mut state = shared.state.lock();

    if shared.legacy_duplicate_handling {
        // Pre-hardening path: any repeated id is refused — which means a
        // client whose AdmissionReply was lost retries and is told
        // `false` for a demand the controller is billing it for.
        if state.demands.iter().any(|d| d.id.0 == id) {
            return false;
        }
    } else if let Some(rec) = state.outcomes.get(&id).copied() {
        if rec.withdrawn {
            return false; // stale resubmit of a withdrawn demand
        }
        if rec.fingerprint != fingerprint {
            return false; // id collision: same id, different demand
        }
        // Idempotent replay: same verdict, and re-push the allocation in
        // case the broker installs were lost alongside the reply.
        ctrl_metrics().replay_hits.inc();
        bate_obs::info!("ctrl.submit_replay", demand = id, admitted = rec.admitted);
        if rec.admitted {
            push_demand_allocation(&ctx, &mut state, DemandId(id));
        }
        return rec.admitted;
    }

    match admission::admit(&ctx, &state.demands, &state.allocation, &demand) {
        AdmissionOutcome::Admitted { allocation, .. } => {
            for (t, f) in allocation.flows_of(demand.id) {
                state.allocation.set(demand.id, t, f);
            }
            state.demands.push(demand.clone());
            push_demand_allocation(&ctx, &mut state, demand.id);
            if !shared.legacy_duplicate_handling {
                state.outcomes.insert(
                    id,
                    SubmitRecord {
                        fingerprint,
                        admitted: true,
                        withdrawn: false,
                    },
                );
            }
            true
        }
        // Rejections are NOT recorded: admitting nothing has no side
        // effect to protect, and the same id may legitimately be retried
        // later once capacity frees up.
        AdmissionOutcome::Rejected => false,
    }
}

fn handle_link_report(shared: &Arc<Shared>, group: usize, up: bool) {
    let ctx = shared.ctx();
    let mut state = shared.state.lock();
    if group >= shared.topo.num_groups() {
        return;
    }
    if up {
        state.failed.remove(group);
    } else {
        state.failed.insert(group);
    }
    if state.demands.is_empty() {
        return;
    }
    if state.failed.is_empty() {
        // Everything healthy again: go back to a guaranteed schedule.
        if let Ok(res) = schedule(&ctx, &state.demands) {
            state.allocation = res.allocation;
        }
    } else {
        // Failure in effect: reroute with Algorithm 2.
        let scenario = Scenario {
            failed: state.failed.clone(),
            probability: 0.0,
        };
        let out = greedy_recovery(&ctx, &state.demands, &scenario);
        state.allocation = out.allocation;
    }
    push_all_allocations(&ctx, &mut state);
}

/// The InstallAllocation message carrying a demand's current entries.
fn install_message(state: &CtrlState, id: DemandId) -> Message {
    let entries: Vec<FlowEntry> = state
        .allocation
        .flows_of(id)
        .map(|(t, f)| FlowEntry {
            pair: t.pair as u32,
            tunnel: t.tunnel as u32,
            rate: f,
        })
        .collect();
    Message::InstallAllocation {
        demand: id.0,
        entries,
    }
}

/// Send one demand's current allocation to every broker.
fn push_demand_allocation(ctx: &TeContext, state: &mut CtrlState, id: DemandId) {
    let msg = install_message(state, id);
    let _ = ctx;
    broadcast(state, &msg);
}

fn push_all_allocations(ctx: &TeContext, state: &mut CtrlState) {
    let ids: Vec<DemandId> = state.demands.iter().map(|d| d.id).collect();
    for id in ids {
        push_demand_allocation(ctx, state, id);
    }
}

fn broadcast(state: &mut CtrlState, msg: &Message) {
    // Broker pushes inherit the causing span (a submit, withdraw, or
    // link report being handled on this thread), extending the trace
    // through to enforcement. Outside any trace the frames are legacy.
    let ctx = FrameCtx::current();
    let mut dead: Vec<String> = Vec::new();
    for (dc, stream) in &state.brokers {
        let mut s = stream.lock();
        if write_frame_ctx(&mut *s, msg, ctx).is_err() {
            dead.push(dc.clone());
        }
    }
    for dc in dead {
        state.brokers.remove(&dc);
    }
}

/// Convenience: the failed fate groups a scenario encodes (used by demos).
pub fn failed_groups_of(scenario: &Scenario) -> Vec<GroupId> {
    scenario.failed.iter().map(GroupId).collect()
}
