//! The central controller (§4): admission control, scheduling, failure
//! recovery, and broker coordination behind a TCP listener.
//!
//! **Event-driven plane.** One poll loop ([`crate::poller`]) owns every
//! connection as a [`crate::event::Conn`] state machine — no
//! thread-per-connection, no accept polling. Within a poll wakeup, all
//! pending `SubmitDemand` frames form an *admission batch*: verdicts are
//! decided by the same first-come-first-served pipeline fold the threaded
//! plane ran (identical verdicts by construction — see
//! `bate_core::admission::admit_batch`), and then ONE warm
//! [`IncrementalScheduler`] solve re-optimizes the whole pool, amortizing
//! the scheduling LP across the batch instead of paying a round per
//! arrival. Batches of one take the exact legacy path, which is what pins
//! the fault-suite goldens byte-identical across the concurrency-model
//! change.
//!
//! Hardened against lossy control channels: demand ids double as
//! idempotency keys — including *within* a batch, where a duplicated
//! submit frame replays the verdict its sibling earned moments earlier. A
//! retried `SubmitDemand` (same id, same content) replays the original
//! admission verdict and re-pushes the allocation — it is never
//! double-counted, and never spuriously refused the way the pre-hardening
//! duplicate check refused it. Withdraws are acknowledged and idempotent,
//! and a broker that re-registers after a severed connection is
//! immediately re-synced with every live allocation.
//!
//! Slow peers cannot wedge the plane: a connection stuck mid-frame
//! (stalled or dribbling bytes) is reaped once its frame-assembly
//! deadline ([`ControllerConfig::idle_timeout`]) passes, while every
//! other connection keeps admitting.

use crate::event::Conn;
use crate::poller::{Poller, Waker};
use crate::proto::{FlowEntry, Message};
use crate::wire::{encode_frame, encode_frame_ctx, FrameCtx};
use bate_core::admission;
use bate_core::clock::{Clock, SystemClock};
use bate_core::incremental::{DemandDelta, IncrementalScheduler};
use bate_core::recovery::greedy::greedy_recovery;
use bate_core::scheduling::schedule_hardened as schedule;
use bate_core::{Allocation, BaDemand, DemandId, TeContext};
use bate_net::{GroupId, LinkSet, Scenario, ScenarioSet, Topology};
use bate_routing::{RoutingScheme, TunnelSet};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Registry handles for the controller metric family. These are
/// process-wide counters; the trace events carry per-message detail.
struct CtrlMetrics {
    submits: Arc<bate_obs::Counter>,
    replay_hits: Arc<bate_obs::Counter>,
    withdraws: Arc<bate_obs::Counter>,
    link_reports: Arc<bate_obs::Counter>,
    rounds: Arc<bate_obs::Counter>,
    stats_queries: Arc<bate_obs::Counter>,
    /// Admission batches drained from the poll loop (size distribution in
    /// `bate_admission_batch_size`; a size-1 batch is the legacy path).
    batches: Arc<bate_obs::Counter>,
    batch_size: Arc<bate_obs::Histogram>,
    /// Controller-side admission latency per submit, µs: frame decode to
    /// verdict (and any batch solve) queued for write. One observation
    /// per demand, so quantiles are per-demand, not per-batch.
    admit_latency: Arc<bate_obs::Histogram>,
    /// Warm incremental solves amortized across multi-submit batches.
    batch_solves: Arc<bate_obs::Counter>,
    /// Connections reaped for stalling mid-frame past the idle deadline.
    conns_reaped: Arc<bate_obs::Counter>,
}

fn ctrl_metrics() -> &'static CtrlMetrics {
    static M: OnceLock<CtrlMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = bate_obs::Registry::global();
        CtrlMetrics {
            submits: r.counter("bate_ctrl_submits_total"),
            replay_hits: r.counter("bate_ctrl_idempotent_replay_hits_total"),
            withdraws: r.counter("bate_ctrl_withdraws_total"),
            link_reports: r.counter("bate_ctrl_link_reports_total"),
            rounds: r.counter("bate_ctrl_schedule_rounds_total"),
            stats_queries: r.counter("bate_ctrl_stats_queries_total"),
            batches: r.counter("bate_ctrl_batches_total"),
            batch_size: r.histogram("bate_admission_batch_size"),
            admit_latency: r.histogram("bate_admission_latency_us"),
            batch_solves: r.counter("bate_ctrl_batch_warm_solves_total"),
            conns_reaped: r.counter("bate_ctrl_conns_reaped_total"),
        }
    })
}

/// Controller parameters.
pub struct ControllerConfig {
    pub topo: Topology,
    pub routing: RoutingScheme,
    /// Scenario pruning depth `y` for the scheduling LP.
    pub max_failures: usize,
    /// Period of the Online Scheduler's automatic rescheduling rounds
    /// (§3.3 suggests minutes in production; `None` disables the thread —
    /// rounds then only happen via [`Controller::run_schedule_round`]).
    pub schedule_interval: Option<Duration>,
    /// Time source for the scheduler thread (tests inject a simulated
    /// clock; everything else uses the system clock).
    pub clock: Arc<dyn Clock>,
    /// Pre-hardening duplicate handling: a repeated SubmitDemand id is
    /// refused outright instead of replaying the original verdict. Kept
    /// ONLY so regression tests can demonstrate the retry bug this
    /// shipped with; leave `false`.
    pub legacy_duplicate_handling: bool,
    /// How long a connection may sit *mid-frame* before it is reaped
    /// (slow-loris defense). Idle connections between frames are never
    /// reaped. `None` disables reaping.
    pub idle_timeout: Option<Duration>,
}

impl ControllerConfig {
    /// A controller with manual scheduling rounds (what tests and demos
    /// want — deterministic timing).
    pub fn manual(topo: Topology, routing: RoutingScheme, max_failures: usize) -> Self {
        ControllerConfig {
            topo,
            routing,
            max_failures,
            schedule_interval: None,
            clock: SystemClock::shared(),
            legacy_duplicate_handling: false,
            idle_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// Cached verdict for one demand id (the idempotency record).
#[derive(Debug, Clone, Copy)]
struct SubmitRecord {
    /// Hash of the submitted fields: a retry matches, an id collision
    /// (same id, different demand) does not.
    fingerprint: u64,
    admitted: bool,
    withdrawn: bool,
}

/// Work requests delivered to the poll loop from other threads
/// (public-API callers and the periodic scheduler thread), signaled
/// through the waker.
enum Cmd {
    ScheduleRound(Arc<Gate>),
}

/// A one-shot completion latch for commands that callers wait on.
struct Gate {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            done: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn open(&self) {
        *self.done.lock() = true;
        self.cv.notify_all();
    }

    fn wait(&self, timeout: Duration) -> bool {
        let mut done = self.done.lock();
        let deadline = Instant::now() + timeout;
        while !*done {
            if self.cv.wait_until(&mut done, deadline).timed_out() {
                return *done;
            }
        }
        true
    }
}

/// Per-connection progress snapshot, published by the poll loop after
/// every wakeup (what the slow-loris tests assert against).
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnProgress {
    pub bytes_in: u64,
    pub frames_in: u64,
    /// Whether the peer is currently mid-frame.
    pub mid_frame: bool,
}

struct Shared {
    topo: Topology,
    tunnels: TunnelSet,
    scenarios: ScenarioSet,
    state: Mutex<CtrlState>,
    /// Notified on broker (de)registration; pairs with `state`.
    broker_cv: Condvar,
    shutdown: AtomicBool,
    commands: Mutex<Vec<Cmd>>,
    waker: Waker,
    progress: Mutex<HashMap<u64, ConnProgress>>,
    legacy_duplicate_handling: bool,
    idle_timeout: Option<Duration>,
}

struct CtrlState {
    demands: Vec<BaDemand>,
    allocation: Allocation,
    failed: LinkSet,
    /// Registered brokers, by DC name, mapped to the poll-loop token of
    /// their connection (writes go through that connection's buffer).
    brokers: HashMap<String, u64>,
    outcomes: HashMap<u64, SubmitRecord>,
}

impl Shared {
    fn ctx(&self) -> TeContext<'_> {
        TeContext::new(&self.topo, &self.tunnels, &self.scenarios)
    }

    fn enqueue(&self, cmd: Cmd) {
        self.commands.lock().push(cmd);
        self.waker.wake();
    }
}

/// A running controller. Shuts down when dropped.
pub struct Controller {
    addr: SocketAddr,
    shared: Arc<Shared>,
    loop_thread: Option<JoinHandle<()>>,
    scheduler_thread: Option<JoinHandle<()>>,
}

impl Controller {
    /// Bind to an ephemeral localhost port and start serving.
    pub fn start(config: ControllerConfig) -> io::Result<Controller> {
        // Pre-register the scheduler's metric families (including the
        // rowgen counters) so `stats` renders them at zero before the
        // first solve instead of omitting them.
        bate_core::scheduling::register_metrics();
        // Same for the incremental warm-start scheduler's `bate_warm_*`
        // families (DESIGN.md §5e): controllers that never churn still
        // export the counters at zero.
        bate_core::incremental::register_metrics();
        // And the recovery-storm family (`bate_storm_*`, DESIGN.md §6x):
        // storms are driven by the sim workload, but the controller owns
        // the exposition surface, so the family must render at zero here.
        bate_core::recovery::register_storm_metrics();
        let tunnels = TunnelSet::compute(&config.topo, config.routing);
        let scenarios = ScenarioSet::enumerate(&config.topo, config.max_failures);
        let failed = LinkSet::new(config.topo.num_groups());
        let shared = Arc::new(Shared {
            topo: config.topo,
            tunnels,
            scenarios,
            state: Mutex::new(CtrlState {
                demands: Vec::new(),
                allocation: Allocation::new(),
                failed,
                brokers: HashMap::new(),
                outcomes: HashMap::new(),
            }),
            broker_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            commands: Mutex::new(Vec::new()),
            waker: Waker::new()?,
            progress: Mutex::new(HashMap::new()),
            legacy_duplicate_handling: config.legacy_duplicate_handling,
            idle_timeout: config.idle_timeout,
        });

        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let poller = Poller::new()?;
        poller.add(listener.as_raw_fd(), TOK_LISTENER, true, false)?;
        poller.add(shared.waker.fd(), TOK_WAKER, true, false)?;

        let loop_shared = Arc::clone(&shared);
        let loop_thread = std::thread::spawn(move || {
            EventLoop::new(loop_shared, listener, poller).run();
        });

        // The Online Scheduler thread (§4): periodic rescheduling rounds,
        // paced by the injected clock, executed on the poll loop (which
        // owns the broker connections the round pushes to).
        let scheduler_thread = config.schedule_interval.map(|interval| {
            let sched_shared = Arc::clone(&shared);
            let clock = Arc::clone(&config.clock);
            std::thread::spawn(move || {
                // Wake frequently so shutdown stays responsive even with
                // long intervals.
                let tick = Duration::from_millis(20).min(interval);
                let mut elapsed = Duration::ZERO;
                while !sched_shared.shutdown.load(Ordering::Relaxed) {
                    clock.sleep(tick);
                    elapsed += tick;
                    if elapsed >= interval {
                        elapsed = Duration::ZERO;
                        let gate = Gate::new();
                        sched_shared.enqueue(Cmd::ScheduleRound(Arc::clone(&gate)));
                        // Wait so rounds can't pile up faster than the
                        // loop executes them — but stay responsive to
                        // shutdown (the loop may already be gone).
                        let deadline = Instant::now() + Duration::from_secs(10);
                        while !gate.wait(Duration::from_millis(20)) {
                            if sched_shared.shutdown.load(Ordering::Relaxed)
                                || Instant::now() >= deadline
                            {
                                break;
                            }
                        }
                    }
                }
            })
        });

        Ok(Controller {
            addr,
            shared,
            loop_thread: Some(loop_thread),
            scheduler_thread,
        })
    }

    /// Address clients and brokers connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of currently admitted demands.
    pub fn admitted_count(&self) -> usize {
        self.shared.state.lock().demands.len()
    }

    /// Number of registered brokers.
    pub fn broker_count(&self) -> usize {
        self.shared.state.lock().brokers.len()
    }

    /// Block until at least `n` brokers are registered. Condvar-notified
    /// by the poll loop on registration — no polling loop, no blind
    /// sleeps. Returns false on timeout.
    pub fn wait_for_brokers(&self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock();
        while state.brokers.len() < n {
            if self
                .shared
                .broker_cv
                .wait_until(&mut state, deadline)
                .timed_out()
            {
                return state.brokers.len() >= n;
            }
        }
        true
    }

    /// Total rate currently allocated to a demand.
    pub fn allocated_rate(&self, id: u64) -> f64 {
        let state = self.shared.state.lock();
        state
            .allocation
            .flows_of(DemandId(id))
            .map(|(_, f)| f)
            .sum()
    }

    /// Whether a demand id was admitted, per the idempotency record
    /// (`None` if the id was never decided).
    pub fn admission_verdict(&self, id: u64) -> Option<bool> {
        self.shared
            .state
            .lock()
            .outcomes
            .get(&id)
            .map(|r| r.admitted && !r.withdrawn)
    }

    /// Run a scheduling round now (the Online Scheduler also does this
    /// periodically when `schedule_interval` is set). Executes on the
    /// poll loop and blocks until the round (and its broker pushes) are
    /// queued.
    pub fn run_schedule_round(&self) {
        let gate = Gate::new();
        self.shared.enqueue(Cmd::ScheduleRound(Arc::clone(&gate)));
        gate.wait(Duration::from_secs(10));
    }

    /// Snapshot of per-connection progress `(token, progress)` as of the
    /// last poll wakeup. Tokens are stable for a connection's lifetime;
    /// entries disappear when the connection closes or is reaped.
    pub fn connection_progress(&self) -> Vec<(u64, ConnProgress)> {
        let mut v: Vec<(u64, ConnProgress)> = self
            .shared
            .progress
            .lock()
            .iter()
            .map(|(&t, &p)| (t, p))
            .collect();
        v.sort_unstable_by_key(|&(t, _)| t);
        v
    }

    /// Connections reaped for stalling mid-frame (process-wide counter).
    pub fn reaped_total() -> u64 {
        ctrl_metrics().conns_reaped.get()
    }
}

impl Drop for Controller {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.waker.wake();
        if let Some(t) = self.loop_thread.take() {
            t.join().ok();
        }
        // A command enqueued after the loop's final drain (the scheduler
        // thread racing shutdown) would leave its caller gated: open
        // every leftover gate before joining.
        for cmd in self.shared.commands.lock().drain(..) {
            match cmd {
                Cmd::ScheduleRound(gate) => gate.open(),
            }
        }
        if let Some(t) = self.scheduler_thread.take() {
            t.join().ok();
        }
    }
}

/// Stable fingerprint of a submission's content, so a retried id can be
/// told apart from an id collision (FNV-1a over the encoded fields).
fn submit_fingerprint(src: &str, dst: &str, bandwidth: f64, beta: f64, price: f64, refund: f64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    eat(src.as_bytes());
    eat(&[0xFF]);
    eat(dst.as_bytes());
    eat(&bandwidth.to_bits().to_be_bytes());
    eat(&beta.to_bits().to_be_bytes());
    eat(&price.to_bits().to_be_bytes());
    eat(&refund.to_bits().to_be_bytes());
    h
}

const TOK_LISTENER: u64 = 0;
const TOK_WAKER: u64 = 1;
const TOK_FIRST_CONN: u64 = 2;

/// A `SubmitDemand` frame drained from a connection, pending its batch.
struct PendingSubmit {
    token: u64,
    rctx: Option<FrameCtx>,
    id: u64,
    src: String,
    dst: String,
    bandwidth: f64,
    beta: f64,
    price: f64,
    refund_ratio: f64,
}

/// The live mirror of the demand pool inside the warm incremental
/// scheduler. Deltas are queued lazily on every admit/withdraw and
/// applied in one [`IncrementalScheduler::apply`] per multi-submit batch;
/// a failed solve poisons the mirror, which is rebuilt from the live
/// pool on the next batch (correctness never depends on the mirror — the
/// FCFS fold already produced valid verdicts and allocations).
struct Mirror {
    sched: Option<IncrementalScheduler>,
    pending: Vec<DemandDelta>,
    /// Pool size at the last failed solve. While the live pool is at
    /// least this big, rebuild attempts are skipped: a pool that just
    /// blew the simplex iteration budget will blow it again, and
    /// re-burning the full budget every batch is a death spiral. The
    /// guard clears once withdrawals shrink the pool.
    poisoned_at: Option<usize>,
}

impl Mirror {
    fn solve(&mut self, ctx: &TeContext, live: &[BaDemand]) -> Option<bate_core::scheduling::ScheduleResult> {
        if let Some(at) = self.poisoned_at {
            if live.len() >= at {
                return None;
            }
            self.poisoned_at = None;
        }
        if self.sched.is_none() {
            self.pending = live.iter().map(|d| DemandDelta::Add(d.clone())).collect();
            self.sched = Some(IncrementalScheduler::new(ctx));
        }
        let deltas = std::mem::take(&mut self.pending);
        match self.sched.as_mut().unwrap().apply(ctx, &deltas) {
            Ok(res) => Some(res),
            Err(e) => {
                bate_obs::warn!(
                    "ctrl.batch_solve_poisoned",
                    deltas = deltas.len(),
                    pool = live.len(),
                    error = format!("{e}"),
                );
                self.sched = None;
                self.pending.clear();
                self.poisoned_at = Some(live.len());
                None
            }
        }
    }
}

struct EventLoop {
    shared: Arc<Shared>,
    listener: TcpListener,
    poller: Poller,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    mirror: Mirror,
}

impl EventLoop {
    fn new(shared: Arc<Shared>, listener: TcpListener, poller: Poller) -> EventLoop {
        EventLoop {
            shared,
            listener,
            poller,
            conns: HashMap::new(),
            next_token: TOK_FIRST_CONN,
            mirror: Mirror {
                sched: None,
                pending: Vec::new(),
                poisoned_at: None,
            },
        }
    }

    fn run(mut self) {
        let mut events = Vec::with_capacity(128);
        let mut inbox: Vec<(u64, Option<FrameCtx>, Message)> = Vec::new();
        while !self.shared.shutdown.load(Ordering::Relaxed) {
            let timeout = self.next_timeout();
            if self.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            inbox.clear();
            for ev in &events {
                match ev.token {
                    TOK_LISTENER => self.accept_ready(),
                    TOK_WAKER => self.shared.waker.drain(),
                    token => {
                        if let Some(conn) = self.conns.get_mut(&token) {
                            if ev.readable || ev.hangup {
                                let mut msgs = Vec::new();
                                conn.read_ready(self.shared.idle_timeout, &mut msgs);
                                inbox.extend(msgs.into_iter().map(|(c, m)| (token, c, m)));
                            }
                            if ev.writable {
                                conn.flush();
                            }
                        }
                    }
                }
            }
            self.process_inbox(&mut inbox);
            self.drain_commands(false);
            self.reap_overdue();
            self.flush_and_sweep();
            self.publish_progress();
        }
        // Unblock any caller still waiting on a command.
        self.drain_commands(true);
    }

    /// The poll timeout: short enough to honor the earliest mid-frame
    /// reap deadline, long enough not to spin (commands and shutdown
    /// arrive through the waker, not the timeout).
    fn next_timeout(&self) -> Option<Duration> {
        let now = Instant::now();
        self.conns
            .values()
            .filter_map(|c| c.frame_deadline())
            .min()
            .map(|d| d.saturating_duration_since(now).max(Duration::from_millis(1)))
            .or(Some(Duration::from_millis(200)))
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nodelay(true).ok();
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .add(stream.as_raw_fd(), token, true, false)
                        .is_ok()
                    {
                        self.conns.insert(token, Conn::new(stream));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    /// Handle this wakeup's messages in arrival order. Maximal runs of
    /// consecutive `SubmitDemand` frames form one admission batch; any
    /// other message type is a batch boundary (so a submit→withdraw
    /// pipeline from one client keeps its order).
    fn process_inbox(&mut self, inbox: &mut Vec<(u64, Option<FrameCtx>, Message)>) {
        let mut batch: Vec<PendingSubmit> = Vec::new();
        for (token, rctx, msg) in inbox.drain(..) {
            match msg {
                Message::SubmitDemand {
                    id,
                    src,
                    dst,
                    bandwidth,
                    beta,
                    price,
                    refund_ratio,
                } => batch.push(PendingSubmit {
                    token,
                    rctx,
                    id,
                    src,
                    dst,
                    bandwidth,
                    beta,
                    price,
                    refund_ratio,
                }),
                other => {
                    self.flush_submit_batch(&mut batch);
                    self.handle_message(token, rctx, other);
                }
            }
        }
        self.flush_submit_batch(&mut batch);
    }

    /// Decide one admission batch: FCFS pipeline fold for the verdicts
    /// (identical to sequential handling by construction), then — for
    /// multi-submit batches — one warm incremental solve re-optimizing
    /// the pool, and a single allocation push per live demand.
    fn flush_submit_batch(&mut self, batch: &mut Vec<PendingSubmit>) {
        if batch.is_empty() {
            return;
        }
        let batch: Vec<PendingSubmit> = std::mem::take(batch);
        let t0 = Instant::now();
        let m = ctrl_metrics();
        m.batches.inc();
        m.batch_size.observe(batch.len() as f64);
        let shared = Arc::clone(&self.shared);
        let ctx = shared.ctx();
        let conns = &mut self.conns;
        let mirror = &mut self.mirror;
        // A batch of one is the legacy path: verdict, per-demand push,
        // reply, all inside the adopted span — byte-identical wire
        // behavior to the threaded plane (the fault-suite goldens).
        let defer_push = batch.len() > 1;
        let mut state = shared.state.lock();
        let mut push_ids: Vec<DemandId> = Vec::new();
        let mut fresh_admits = 0usize;
        for sub in &batch {
            // Adopt the client's span so the admission pipeline (and the
            // LP solve under it) parents on the submit that caused it —
            // this is what links client → controller → solver phases
            // under one trace_id.
            let _adopted = sub
                .rctx
                .map(|c| bate_obs::context::adopt("ctrl.submit", c.trace_id, c.span_id));
            let admitted = handle_submit_locked(
                &shared,
                &ctx,
                &mut state,
                conns,
                sub,
                defer_push,
                &mut push_ids,
                &mut mirror.pending,
                &mut fresh_admits,
            );
            let reply = Message::AdmissionReply {
                id: sub.id,
                admitted,
            };
            if let Ok(frame) = encode_frame_ctx(&reply, FrameCtx::current()) {
                if let Some(conn) = conns.get_mut(&sub.token) {
                    conn.queue_frame(&frame);
                }
            }
        }
        if defer_push {
            let mut pushed_all = false;
            // One warm solve for the whole batch. Skipped while a failure
            // is in effect (the recovery allocation stays authoritative
            // until repair, same as scheduling rounds).
            if fresh_admits > 0 && state.failed.is_empty() {
                if let Some(res) = mirror.solve(&ctx, &state.demands) {
                    m.batch_solves.inc();
                    bate_obs::info!(
                        "ctrl.batch_solve",
                        batch = batch.len(),
                        admitted = fresh_admits,
                        pool = state.demands.len(),
                    );
                    state.allocation = res.allocation;
                    push_all_allocations(&mut state, conns);
                    pushed_all = true;
                }
            }
            if !pushed_all {
                // No solve (pure-replay batch, active failure, or a
                // poisoned mirror): push the fold's per-demand
                // allocations, once per distinct id.
                push_ids.sort_unstable_by_key(|d| d.0);
                push_ids.dedup();
                for id in push_ids {
                    push_demand_allocation(&mut state, conns, id);
                }
            }
        }
        // Every demand in the batch waited for the whole batch decision,
        // so each inherits the batch's wall-clock latency.
        let us = t0.elapsed().as_secs_f64() * 1e6;
        for _ in 0..batch.len() {
            m.admit_latency.observe(us);
        }
    }

    fn handle_message(&mut self, token: u64, rctx: Option<FrameCtx>, msg: Message) {
        let shared = Arc::clone(&self.shared);
        let conns = &mut self.conns;
        match msg {
            Message::WithdrawDemand { id } => {
                let _adopted = rctx
                    .map(|c| bate_obs::context::adopt("ctrl.withdraw", c.trace_id, c.span_id));
                {
                    ctrl_metrics().withdraws.inc();
                    let mut state = shared.state.lock();
                    let was_present = state.demands.iter().any(|d| d.id.0 == id);
                    state.demands.retain(|d| d.id.0 != id);
                    state.allocation.remove_demand(DemandId(id));
                    // Tombstone the id: a stale submit retry arriving after
                    // the withdraw must not re-admit it.
                    state
                        .outcomes
                        .entry(id)
                        .and_modify(|r| r.withdrawn = true)
                        .or_insert(SubmitRecord {
                            fingerprint: 0,
                            admitted: false,
                            withdrawn: true,
                        });
                    if was_present {
                        self.mirror.pending.push(DemandDelta::Remove(DemandId(id)));
                        broadcast(&mut state, conns, &Message::RemoveAllocation { demand: id });
                    }
                }
                queue_to(conns, token, &Message::WithdrawAck { id }, FrameCtx::current());
            }
            Message::RegisterBroker { dc } => {
                let mut state = shared.state.lock();
                state.brokers.insert(dc.clone(), token);
                if let Some(conn) = conns.get_mut(&token) {
                    conn.broker_dc = Some(dc);
                    // Re-sync: a broker (re)connecting after a severed
                    // link must converge to the live allocation set.
                    let ids: Vec<DemandId> = state.demands.iter().map(|d| d.id).collect();
                    for id in ids {
                        let msg = install_message(&state, id);
                        if let Ok(frame) = encode_frame(&msg) {
                            conn.queue_frame(&frame);
                        }
                    }
                }
                shared.broker_cv.notify_all();
            }
            Message::LinkReport { group, up } => {
                ctrl_metrics().link_reports.inc();
                bate_obs::warn!("ctrl.link_report", group = group, up = up);
                handle_link_report(&shared, conns, group as usize, up);
            }
            Message::Ping { token: t } => {
                queue_to(conns, token, &Message::Pong { token: t }, None);
            }
            Message::StatsQuery => {
                ctrl_metrics().stats_queries.inc();
                let text = bate_obs::Registry::global().render_prometheus();
                queue_to(conns, token, &Message::StatsText { text }, None);
            }
            Message::StatsJsonQuery { prefix } => {
                ctrl_metrics().stats_queries.inc();
                let text = bate_obs::Registry::global()
                    .snapshot_jsonl_filtered(|name, _| name.starts_with(prefix.as_str()));
                queue_to(conns, token, &Message::StatsText { text }, None);
            }
            Message::TraceQuery { trace_id } => {
                ctrl_metrics().stats_queries.inc();
                let events = bate_obs::flight::ring_events();
                let text = bate_obs::flight::render_tree(&events, trace_id);
                queue_to(conns, token, &Message::StatsText { text }, None);
            }
            Message::SloQuery => {
                ctrl_metrics().stats_queries.inc();
                let text = bate_obs::SloEngine::global().render_report();
                queue_to(conns, token, &Message::StatsText { text }, None);
            }
            // Stats are accepted and currently only acknowledged by
            // silence; a production controller would aggregate them.
            Message::StatsReport { .. } => {}
            // Messages a controller never receives.
            Message::SubmitDemand { .. }
            | Message::AdmissionReply { .. }
            | Message::WithdrawAck { .. }
            | Message::InstallAllocation { .. }
            | Message::RemoveAllocation { .. }
            | Message::StatsText { .. }
            | Message::Pong { .. } => {}
        }
    }

    fn drain_commands(&mut self, shutting_down: bool) {
        let cmds: Vec<Cmd> = std::mem::take(&mut *self.shared.commands.lock());
        for cmd in cmds {
            match cmd {
                Cmd::ScheduleRound(gate) => {
                    if !shutting_down {
                        schedule_round(&self.shared, &mut self.conns);
                    }
                    gate.open();
                }
            }
        }
    }

    fn reap_overdue(&mut self) {
        if self.shared.idle_timeout.is_none() {
            return;
        }
        let now = Instant::now();
        let overdue: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.overdue(now))
            .map(|(&t, _)| t)
            .collect();
        for token in overdue {
            ctrl_metrics().conns_reaped.inc();
            bate_obs::warn!("ctrl.conn_reaped", token = token);
            self.close_conn(token);
        }
    }

    /// Flush pending writes, retire dead/EOF connections, and reconcile
    /// `EPOLLOUT` interest with actual buffered bytes.
    fn flush_and_sweep(&mut self) {
        let mut dead: Vec<u64> = Vec::new();
        for (&token, conn) in self.conns.iter_mut() {
            if !conn.dead && conn.wants_write() {
                conn.flush();
            }
            // EOF peers: everything they sent was processed this wakeup
            // and replies were flushed above; the socket is done.
            if conn.dead || conn.eof {
                dead.push(token);
            }
        }
        for token in dead {
            self.close_conn(token);
        }
        for (&token, conn) in self.conns.iter_mut() {
            let want = conn.wants_write();
            if want != conn.writable_interest {
                conn.writable_interest = want;
                self.poller
                    .modify(conn.stream.as_raw_fd(), token, true, want)
                    .ok();
            }
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.poller.delete(conn.stream.as_raw_fd()).ok();
            if let Some(dc) = &conn.broker_dc {
                let mut state = self.shared.state.lock();
                if state.brokers.get(dc) == Some(&token) {
                    state.brokers.remove(dc);
                    self.shared.broker_cv.notify_all();
                }
            }
            self.shared.progress.lock().remove(&token);
        }
    }

    fn publish_progress(&self) {
        let mut progress = self.shared.progress.lock();
        progress.clear();
        for (&token, conn) in &self.conns {
            progress.insert(
                token,
                ConnProgress {
                    bytes_in: conn.bytes_in,
                    frames_in: conn.frames_in,
                    mid_frame: conn.mid_frame(),
                },
            );
        }
    }
}

/// The submit fold step, identical in decision logic to the threaded
/// plane's `handle_submit`. With `defer_push` (multi-submit batches) the
/// allocation pushes are collected into `push_ids` instead of being sent
/// per demand, so the batch can push once after its warm solve.
#[allow(clippy::too_many_arguments)]
fn handle_submit_locked(
    shared: &Shared,
    ctx: &TeContext,
    state: &mut CtrlState,
    conns: &mut HashMap<u64, Conn>,
    sub: &PendingSubmit,
    defer_push: bool,
    push_ids: &mut Vec<DemandId>,
    pending_deltas: &mut Vec<DemandDelta>,
    fresh_admits: &mut usize,
) -> bool {
    let fingerprint = submit_fingerprint(
        &sub.src,
        &sub.dst,
        sub.bandwidth,
        sub.beta,
        sub.price,
        sub.refund_ratio,
    );
    ctrl_metrics().submits.inc();

    let (Some(s), Some(d)) = (
        shared.topo.find_node(&sub.src),
        shared.topo.find_node(&sub.dst),
    ) else {
        return false;
    };
    let Some(pair) = shared.tunnels.pair_index(s, d) else {
        return false;
    };
    if sub.bandwidth <= 0.0 || !(0.0..=1.0).contains(&sub.beta) {
        return false;
    }
    let demand = BaDemand {
        id: DemandId(sub.id),
        bandwidth: vec![(pair, sub.bandwidth)],
        beta: sub.beta,
        price: sub.price,
        refund_ratio: sub.refund_ratio.clamp(0.0, 1.0),
    };

    if shared.legacy_duplicate_handling {
        // Pre-hardening path: any repeated id is refused — which means a
        // client whose AdmissionReply was lost retries and is told
        // `false` for a demand the controller is billing it for.
        if state.demands.iter().any(|d| d.id.0 == sub.id) {
            return false;
        }
    } else if let Some(rec) = state.outcomes.get(&sub.id).copied() {
        if rec.withdrawn {
            return false; // stale resubmit of a withdrawn demand
        }
        if rec.fingerprint != fingerprint {
            return false; // id collision: same id, different demand
        }
        // Idempotent replay: same verdict, and re-push the allocation in
        // case the broker installs were lost alongside the reply.
        ctrl_metrics().replay_hits.inc();
        bate_obs::info!("ctrl.submit_replay", demand = sub.id, admitted = rec.admitted);
        if rec.admitted {
            if defer_push {
                push_ids.push(DemandId(sub.id));
            } else {
                push_demand_allocation(state, conns, DemandId(sub.id));
            }
        }
        return rec.admitted;
    }

    // Split-borrow the pool and allocation for the fold step.
    let CtrlState {
        demands,
        allocation,
        ..
    } = state;
    if admission::admit_and_apply(ctx, demands, allocation, &demand) {
        pending_deltas.push(DemandDelta::Add(demand.clone()));
        *fresh_admits += 1;
        if defer_push {
            push_ids.push(demand.id);
        } else {
            push_demand_allocation(state, conns, demand.id);
        }
        if !shared.legacy_duplicate_handling {
            state.outcomes.insert(
                sub.id,
                SubmitRecord {
                    fingerprint,
                    admitted: true,
                    withdrawn: false,
                },
            );
        }
        true
    } else {
        // Rejections are NOT recorded: admitting nothing has no side
        // effect to protect, and the same id may legitimately be retried
        // later once capacity frees up.
        false
    }
}

/// One Online Scheduler round: re-optimize every admitted demand and push
/// the fresh allocations to the brokers. Skipped while a failure is in
/// effect (the recovery allocation stays authoritative until repair).
fn schedule_round(shared: &Arc<Shared>, conns: &mut HashMap<u64, Conn>) {
    let ctx = shared.ctx();
    let mut state = shared.state.lock();
    if state.demands.is_empty() || !state.failed.is_empty() {
        return;
    }
    if let Ok(res) = schedule(&ctx, &state.demands) {
        ctrl_metrics().rounds.inc();
        bate_obs::info!(
            "ctrl.schedule_round",
            demands = state.demands.len(),
            lp_iterations = res.solve_stats.iterations(),
            lp_pivots = res.solve_stats.pivots,
        );
        state.allocation = res.allocation;
        push_all_allocations(&mut state, conns);
    }
    // One SLO sample per scheduling round: burn rates evolve at round
    // granularity, matching the paper's per-round BA-guarantee framing.
    bate_obs::SloEngine::global().record_sample(bate_obs::Registry::global());
}

fn handle_link_report(
    shared: &Arc<Shared>,
    conns: &mut HashMap<u64, Conn>,
    group: usize,
    up: bool,
) {
    let ctx = shared.ctx();
    let mut state = shared.state.lock();
    if group >= shared.topo.num_groups() {
        return;
    }
    if up {
        state.failed.remove(group);
    } else {
        state.failed.insert(group);
    }
    if state.demands.is_empty() {
        return;
    }
    if state.failed.is_empty() {
        // Everything healthy again: go back to a guaranteed schedule.
        if let Ok(res) = schedule(&ctx, &state.demands) {
            state.allocation = res.allocation;
        }
    } else {
        // Failure in effect: reroute with Algorithm 2.
        let scenario = Scenario {
            failed: state.failed.clone(),
            probability: 0.0,
        };
        let out = greedy_recovery(&ctx, &state.demands, &scenario);
        state.allocation = out.allocation;
    }
    push_all_allocations(&mut state, conns);
}

/// The InstallAllocation message carrying a demand's current entries.
fn install_message(state: &CtrlState, id: DemandId) -> Message {
    let entries: Vec<FlowEntry> = state
        .allocation
        .flows_of(id)
        .map(|(t, f)| FlowEntry {
            pair: t.pair as u32,
            tunnel: t.tunnel as u32,
            rate: f,
        })
        .collect();
    Message::InstallAllocation {
        demand: id.0,
        entries,
    }
}

/// Send one demand's current allocation to every broker.
fn push_demand_allocation(state: &mut CtrlState, conns: &mut HashMap<u64, Conn>, id: DemandId) {
    let msg = install_message(state, id);
    broadcast(state, conns, &msg);
}

fn push_all_allocations(state: &mut CtrlState, conns: &mut HashMap<u64, Conn>) {
    let ids: Vec<DemandId> = state.demands.iter().map(|d| d.id).collect();
    for id in ids {
        push_demand_allocation(state, conns, id);
    }
}

fn broadcast(state: &mut CtrlState, conns: &mut HashMap<u64, Conn>, msg: &Message) {
    // Broker pushes inherit the causing span (a submit, withdraw, or
    // link report being handled on the loop), extending the trace
    // through to enforcement. Outside any trace the frames are legacy.
    let ctx = FrameCtx::current();
    let Ok(frame) = encode_frame_ctx(msg, ctx) else {
        return;
    };
    // A broker whose connection died is dropped here; write failures on
    // a live fd surface at flush time and retire it through the sweep.
    state.brokers.retain(|_, token| match conns.get_mut(token) {
        Some(conn) if !conn.dead => {
            conn.queue_frame(&frame);
            true
        }
        _ => false,
    });
}

/// Queue an encoded reply frame on one connection (no-op if it died
/// earlier in the wakeup).
fn queue_to(conns: &mut HashMap<u64, Conn>, token: u64, msg: &Message, ctx: Option<FrameCtx>) {
    if let Ok(frame) = encode_frame_ctx(msg, ctx) {
        if let Some(conn) = conns.get_mut(&token) {
            conn.queue_frame(&frame);
        }
    }
}

/// Convenience: the failed fate groups a scenario encodes (used by demos).
pub fn failed_groups_of(scenario: &Scenario) -> Vec<GroupId> {
    scenario.failed.iter().map(GroupId).collect()
}
