//! `batectl` — command-line front end for the BATE controller.
//!
//! ```text
//! batectl serve <topology> [--port P] [--interval SECS] [--prune Y]
//! batectl submit <addr> --id N --src DC1 --dst DC3 --mbps 400 --beta 0.999
//! batectl withdraw <addr> --id N
//! batectl ping <addr>
//! batectl stats <addr> [--json [--prefix NAME_PREFIX]]
//! batectl trace <addr> <trace-id>
//! batectl slo <addr>
//! batectl loadgen <addr> [--per-min N] [--secs S] [--seed N] [--live-cap N] [--topology T]
//! ```
//!
//! `<topology>` is a builtin name (`toy4`, `testbed6`, `b4`, `ibm`, `att`,
//! `fiti`) or a path to a topology file (`bate_net::fileio` format).
//!
//! Diagnostics go through the tracing facade with a stderr subscriber
//! rather than ad-hoc `eprintln!`, so every error carries a structured
//! event (level + name + fields) while printing the same `error: <msg>`
//! text and keeping the same exit codes as before.

use bate_net::{fileio, topologies, Topology};
use bate_obs::{Level, StderrSubscriber, SystemClock};
use bate_routing::RoutingScheme;
use bate_system::client::DemandRequest;
use bate_system::{Client, Controller, ControllerConfig, PipelinedClient};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage:\n  batectl serve <topology> [--interval SECS] [--prune Y]\n  \
         batectl submit <addr> --id N --src A --dst B --mbps F --beta F [--price F] [--refund F]\n  \
         batectl withdraw <addr> --id N\n  batectl ping <addr>\n  \
         batectl stats <addr> [--json [--prefix P]]\n  \
         batectl trace <addr> <trace-id>\n  batectl slo <addr>\n  \
         batectl loadgen <addr> [--per-min N] [--secs S] [--seed N] [--live-cap N] [--topology T]"
    );
    std::process::exit(2)
}

fn load_topology(spec: &str) -> Topology {
    match spec {
        "toy4" => topologies::toy4(),
        "testbed6" => topologies::testbed6(),
        "b4" => topologies::b4(),
        "ibm" => topologies::ibm(),
        "att" => topologies::att(),
        "fiti" => topologies::fiti(),
        path => fileio::load_topology(std::path::Path::new(path)).unwrap_or_else(|e| {
            bate_obs::error!(
                "batectl.topology_error",
                msg = format!("cannot load topology {path}: {e}"),
            );
            std::process::exit(1)
        }),
    }
}

/// Pull `--key value` flags out of an argument list.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Flags {
        let mut out = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let Some(v) = it.next() else { usage() };
                out.push((key.to_string(), v.clone()));
            } else {
                usage();
            }
        }
        Flags(out)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.get(key).and_then(|v| v.parse().ok())
    }

    fn required<T: std::str::FromStr>(&self, key: &str) -> T {
        match self.num(key) {
            Some(v) => v,
            None => {
                bate_obs::error!(
                    "batectl.flag_error",
                    msg = format!("missing or invalid --{key}"),
                );
                usage()
            }
        }
    }
}

fn main() {
    // Structured diagnostics to stderr: `error: <msg> (...)` lines, same
    // text the pre-telemetry eprintln! calls produced.
    bate_obs::trace::install(StderrSubscriber::new(Level::Warn), SystemClock::shared());

    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };

    match cmd.as_str() {
        "serve" => {
            let Some(spec) = args.get(1) else { usage() };
            let flags = Flags::parse(&args[2..]);
            let interval = flags.num::<f64>("interval").unwrap_or(60.0);
            let prune = flags.num::<usize>("prune").unwrap_or(2);
            let topo = load_topology(spec);
            // The flight ring backs `batectl trace <addr> <id>` and the
            // standing dump triggers (election loss, cert fallback);
            // without it TraceQuery always answers an empty ring.
            bate_obs::flight::enable(65_536);
            println!("starting controller for {topo}");
            let controller = Controller::start(ControllerConfig {
                topo,
                routing: RoutingScheme::default_ksp4(),
                max_failures: prune,
                schedule_interval: Some(Duration::from_secs_f64(interval)),
                clock: bate_core::clock::SystemClock::shared(),
                legacy_duplicate_handling: false,
                idle_timeout: Some(Duration::from_secs(30)),
            })
            .expect("controller start");
            println!("listening on {}", controller.addr());
            println!("(press ctrl-c to stop)");
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        "submit" => {
            let Some(addr) = args.get(1) else { usage() };
            let flags = Flags::parse(&args[2..]);
            let req = DemandRequest {
                id: flags.required("id"),
                src: flags.get("src").unwrap_or_else(|| usage()).to_string(),
                dst: flags.get("dst").unwrap_or_else(|| usage()).to_string(),
                bandwidth: flags.required("mbps"),
                beta: flags.required("beta"),
                price: flags
                    .num("price")
                    .unwrap_or_else(|| flags.required::<f64>("mbps")),
                refund_ratio: flags.num("refund").unwrap_or(0.0),
            };
            let mut client = connect(addr);
            match client.submit(&req) {
                Ok(true) => println!("demand {} ADMITTED", req.id),
                Ok(false) => {
                    println!("demand {} rejected", req.id);
                    std::process::exit(1)
                }
                Err(e) => fail(&e.to_string()),
            }
        }
        "withdraw" => {
            let Some(addr) = args.get(1) else { usage() };
            let flags = Flags::parse(&args[2..]);
            let id: u64 = flags.required("id");
            let mut client = connect(addr);
            match client.withdraw(id) {
                Ok(()) => println!("demand {id} withdrawn"),
                Err(e) => fail(&e.to_string()),
            }
        }
        "ping" => {
            let Some(addr) = args.get(1) else { usage() };
            let mut client = connect(addr);
            match client.ping() {
                Ok(rtt) => println!("pong in {rtt:?}"),
                Err(e) => fail(&e.to_string()),
            }
        }
        "stats" => {
            let Some(addr) = args.get(1) else { usage() };
            // `--json` is a bare flag (no value), so peel it off before the
            // `--key value` parser sees the rest.
            let rest: Vec<String> = args[2..].to_vec();
            let json = rest.first().map(String::as_str) == Some("--json");
            let mut client = connect(addr);
            let result = if json {
                let flags = Flags::parse(&rest[1..]);
                let prefix = flags.get("prefix").unwrap_or("").to_string();
                client.stats_json(&prefix)
            } else {
                if !rest.is_empty() {
                    usage();
                }
                client.stats()
            };
            match result {
                Ok(text) => print!("{text}"),
                Err(e) => fail(&e.to_string()),
            }
        }
        "trace" => {
            let Some(addr) = args.get(1) else { usage() };
            let Some(id) = args.get(2) else { usage() };
            let Some(trace_id) = bate_obs::context::parse_id(id) else {
                fail(&format!("bad trace id {id} (hex or decimal)"))
            };
            let mut client = connect(addr);
            match client.trace_tree(trace_id) {
                Ok(text) => print!("{text}"),
                Err(e) => fail(&e.to_string()),
            }
        }
        "slo" => {
            let Some(addr) = args.get(1) else { usage() };
            let mut client = connect(addr);
            match client.slo_report() {
                Ok(text) => print!("{text}"),
                Err(e) => fail(&e.to_string()),
            }
        }
        "loadgen" => {
            let Some(addr) = args.get(1) else { usage() };
            let flags = Flags::parse(&args[2..]);
            run_loadgen(addr, &flags);
        }
        _ => usage(),
    }
}

/// Drive a seeded steady+bursty submission schedule (the same 60/40 mix
/// as the `loadgen` bench) at a running controller over one pipelined
/// connection. Closed-loop waves: each wave's verdicts are collected
/// before the next is queued, and admissions past `--live-cap` withdraw
/// the oldest live demand, so the controller's pool stays bounded no
/// matter how long the run.
fn run_loadgen(addr: &str, flags: &Flags) {
    use bate_sim::loadgen::{schedule, LoadProfile};

    let per_min: f64 = flags.num("per-min").unwrap_or(6_000.0);
    let secs: f64 = flags.num("secs").unwrap_or(10.0);
    let seed: u64 = flags.num("seed").unwrap_or(7);
    let cap: usize = flags.num("live-cap").unwrap_or(12);
    let topo = load_topology(flags.get("topology").unwrap_or("testbed6"));
    let pairs = LoadProfile::all_pairs(&topo);

    let steady = LoadProfile::steady(per_min * 0.6, pairs.clone(), seed);
    let bursty_base = per_min * 0.4
        / LoadProfile::bursty(1.0, pairs.clone(), seed)
            .pattern
            .mean_per_min();
    let bursty = LoadProfile::bursty(bursty_base, pairs, seed ^ 0xB0B5);
    let mut events = schedule(&steady, secs, 1);
    events.extend(schedule(&bursty, secs, 10_000_000));
    events.sort_by(|a, b| a.offset_s.partial_cmp(&b.offset_s).unwrap());
    let total = events.len();
    if total == 0 {
        fail("empty schedule: raise --per-min or --secs");
    }

    let sock = addr.parse().unwrap_or_else(|_| {
        bate_obs::error!("batectl.address_error", msg = format!("bad address {addr}"));
        std::process::exit(2)
    });
    let mut client =
        PipelinedClient::connect(sock).unwrap_or_else(|e| fail(&e.to_string()));
    let io = |e: std::io::Error| -> ! { fail(&e.to_string()) };

    let (mut admitted, mut rejected) = (0u64, 0u64);
    let mut live: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
    let start = std::time::Instant::now();
    let mut next = 0usize;
    while next < total {
        let elapsed = start.elapsed().as_secs_f64();
        let mut queued = 0usize;
        while next < total && events[next].offset_s <= elapsed && queued < 32 {
            let e = &events[next];
            client
                .queue_submit(&DemandRequest::new(e.id, &e.src, &e.dst, e.bandwidth, e.beta))
                .unwrap_or_else(|e| io(e));
            queued += 1;
            next += 1;
        }
        if queued == 0 {
            std::thread::sleep(Duration::from_micros(500));
            continue;
        }
        client.flush().unwrap_or_else(|e| io(e));
        for _ in 0..queued {
            let (id, ok) = client.recv_verdict().unwrap_or_else(|e| io(e));
            if ok {
                admitted += 1;
                live.push_back(id);
            } else {
                rejected += 1;
            }
            while live.len() > cap {
                let old = live.pop_front().unwrap();
                client.queue_withdraw(old).unwrap_or_else(|e| io(e));
            }
        }
        client.flush().unwrap_or_else(|e| io(e));
    }
    let wall = start.elapsed().as_secs_f64();
    println!(
        "loadgen  {total} submissions in {wall:.3} s  ({:.0}/min, target {per_min:.0}/min)  \
         admitted {admitted} rejected {rejected}",
        total as f64 / wall * 60.0,
    );
}

fn connect(addr: &str) -> Client {
    let sock = addr.parse().unwrap_or_else(|_| {
        bate_obs::error!(
            "batectl.address_error",
            msg = format!("bad address {addr}"),
        );
        std::process::exit(2)
    });
    Client::connect(sock).unwrap_or_else(|e| fail(&e.to_string()))
}

/// Structured fatal error: emits a `batectl.error` event whose stderr
/// rendering is exactly the pre-telemetry `error: <msg>` line, then exits
/// with the same code as before.
fn fail(msg: &str) -> ! {
    bate_obs::error!("batectl.error", msg = msg);
    std::process::exit(1)
}
