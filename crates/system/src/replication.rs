//! Controller replication: master election by single-decree Paxos (§4).
//!
//! "Controller failures can be remedied by using multiple replications,
//! where the master controller is elected by the Paxos algorithm [37]."
//! This module implements exactly that slice of Paxos: a set of controller
//! replicas agree on *one* value — the id of the master — with the classic
//! prepare/promise, accept/accepted exchange over the same length-prefixed
//! TCP framing the rest of the system uses.
//!
//! Properties (the single-decree Paxos guarantees):
//! * **Safety** — once a value is chosen by a majority of acceptors, every
//!   later successful election returns the same value, even with competing
//!   proposers.
//! * **Liveness under quorum** — a proposer that can reach a majority of
//!   acceptors and picks a high enough ballot succeeds; without a quorum
//!   the election fails with [`ElectError::NoQuorum`] rather than hanging.
//!
//! Hardening: connect/read deadlines and the inter-attempt backoff are
//! configurable ([`ReplicaConfig`]) and paced by an injected [`Clock`], so
//! fault-injection tests can run elections under partitions without
//! wall-clock flakiness. Ballot races back off exponentially with seeded
//! jitter instead of retrying immediately, and a replica's knowledge of
//! the master carries a **lease**: after `lease` elapses on the replica's
//! clock without renewal, [`Replica::master`] returns `None` and callers
//! must re-query or re-elect rather than act on stale state.

use crate::wire::{read_frame, write_frame, Decode, Encode, WireError};
use bate_core::clock::{Clock, SystemClock};
use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Registry handles for the election metric family.
struct ElectionMetrics {
    attempts: Arc<bate_obs::Counter>,
    won: Arc<bate_obs::Counter>,
    ballot_races: Arc<bate_obs::Counter>,
    no_quorum: Arc<bate_obs::Counter>,
    exhausted: Arc<bate_obs::Counter>,
}

fn election_metrics() -> &'static ElectionMetrics {
    static M: OnceLock<ElectionMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = bate_obs::Registry::global();
        ElectionMetrics {
            attempts: r.counter("bate_election_attempts_total"),
            won: r.counter("bate_election_won_total"),
            ballot_races: r.counter("bate_election_ballot_races_total"),
            no_quorum: r.counter("bate_election_no_quorum_total"),
            exhausted: r.counter("bate_election_retries_exhausted_total"),
        }
    })
}

/// Paxos wire messages.
#[derive(Debug, Clone, PartialEq)]
enum PaxosMsg {
    /// Proposer → acceptor, phase 1.
    Prepare { ballot: u64 },
    /// Acceptor → proposer: promise not to accept ballots below `ballot`.
    /// Carries the highest previously accepted (ballot, value), if any.
    Promise {
        ok: bool,
        /// The acceptor's current promise (for proposer back-off).
        promised: u64,
        accepted: Option<(u64, u64)>,
    },
    /// Proposer → acceptor, phase 2.
    Accept { ballot: u64, value: u64 },
    /// Acceptor → proposer.
    Accepted { ok: bool, promised: u64 },
    /// Anyone → acceptor: what do you believe is chosen?
    Query,
    /// Acceptor → anyone.
    ChosenReply { value: Option<u64> },
    /// Proposer → acceptor after a successful round (learner broadcast).
    Chosen { value: u64 },
}

const T_PREPARE: u8 = 1;
const T_PROMISE: u8 = 2;
const T_ACCEPT: u8 = 3;
const T_ACCEPTED: u8 = 4;
const T_QUERY: u8 = 5;
const T_CHOSEN_REPLY: u8 = 6;
const T_CHOSEN: u8 = 7;

impl Encode for PaxosMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            PaxosMsg::Prepare { ballot } => {
                T_PREPARE.encode(buf);
                ballot.encode(buf);
            }
            PaxosMsg::Promise {
                ok,
                promised,
                accepted,
            } => {
                T_PROMISE.encode(buf);
                ok.encode(buf);
                promised.encode(buf);
                match accepted {
                    Some((b, v)) => {
                        true.encode(buf);
                        b.encode(buf);
                        v.encode(buf);
                    }
                    None => false.encode(buf),
                }
            }
            PaxosMsg::Accept { ballot, value } => {
                T_ACCEPT.encode(buf);
                ballot.encode(buf);
                value.encode(buf);
            }
            PaxosMsg::Accepted { ok, promised } => {
                T_ACCEPTED.encode(buf);
                ok.encode(buf);
                promised.encode(buf);
            }
            PaxosMsg::Query => T_QUERY.encode(buf),
            PaxosMsg::ChosenReply { value } => {
                T_CHOSEN_REPLY.encode(buf);
                match value {
                    Some(v) => {
                        true.encode(buf);
                        v.encode(buf);
                    }
                    None => false.encode(buf),
                }
            }
            PaxosMsg::Chosen { value } => {
                T_CHOSEN.encode(buf);
                value.encode(buf);
            }
        }
    }
}

impl Decode for PaxosMsg {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(match u8::decode(buf)? {
            T_PREPARE => PaxosMsg::Prepare {
                ballot: u64::decode(buf)?,
            },
            T_PROMISE => {
                let ok = bool::decode(buf)?;
                let promised = u64::decode(buf)?;
                let accepted = if bool::decode(buf)? {
                    Some((u64::decode(buf)?, u64::decode(buf)?))
                } else {
                    None
                };
                PaxosMsg::Promise {
                    ok,
                    promised,
                    accepted,
                }
            }
            T_ACCEPT => PaxosMsg::Accept {
                ballot: u64::decode(buf)?,
                value: u64::decode(buf)?,
            },
            T_ACCEPTED => PaxosMsg::Accepted {
                ok: bool::decode(buf)?,
                promised: u64::decode(buf)?,
            },
            T_QUERY => PaxosMsg::Query,
            T_CHOSEN_REPLY => {
                let value = if bool::decode(buf)? {
                    Some(u64::decode(buf)?)
                } else {
                    None
                };
                PaxosMsg::ChosenReply { value }
            }
            T_CHOSEN => PaxosMsg::Chosen {
                value: u64::decode(buf)?,
            },
            other => return Err(WireError::Malformed(format!("paxos tag {other}"))),
        })
    }
}

/// Acceptor state (single decree).
#[derive(Debug, Default)]
struct AcceptorState {
    promised: u64,
    accepted: Option<(u64, u64)>,
    chosen: Option<u64>,
    /// When the local lease on `chosen` expires (on the replica's clock).
    lease_expiry: Duration,
}

/// Election failures.
#[derive(Debug, PartialEq, Eq)]
pub enum ElectError {
    /// Fewer than a majority of acceptors answered.
    NoQuorum,
    /// Retries exhausted (persistent ballot races).
    RetriesExhausted,
}

impl std::fmt::Display for ElectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElectError::NoQuorum => write!(f, "no acceptor quorum reachable"),
            ElectError::RetriesExhausted => write!(f, "election retries exhausted"),
        }
    }
}

impl std::error::Error for ElectError {}

/// Deadlines and retry pacing for a replica's RPC and elections.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// TCP connect deadline per acceptor call.
    pub connect_timeout: Duration,
    /// Reply deadline per acceptor call.
    pub read_timeout: Duration,
    /// Backoff before election retry `k` is `retry_base * 2^(k-1)` plus
    /// jitter, capped at `retry_max`.
    pub retry_base: Duration,
    pub retry_max: Duration,
    /// Election attempts before [`ElectError::RetriesExhausted`].
    pub max_attempts: u32,
    /// How long locally learned master knowledge stays trustworthy.
    pub lease: Duration,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            connect_timeout: Duration::from_millis(200),
            read_timeout: Duration::from_millis(500),
            retry_base: Duration::from_millis(5),
            retry_max: Duration::from_millis(100),
            max_attempts: 16,
            lease: Duration::from_secs(10),
        }
    }
}

/// One controller replica: an always-on Paxos acceptor plus a proposer
/// API for running elections.
pub struct Replica {
    id: u64,
    addr: SocketAddr,
    state: Arc<Mutex<AcceptorState>>,
    shutdown: Arc<AtomicBool>,
    ballot_counter: AtomicU64,
    config: ReplicaConfig,
    clock: Arc<dyn Clock>,
    jitter: Mutex<StdRng>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Replica {
    /// Start an acceptor on an ephemeral localhost port with default
    /// deadlines and the system clock.
    pub fn start(id: u64) -> io::Result<Replica> {
        Replica::start_with(id, ReplicaConfig::default(), SystemClock::shared())
    }

    /// Full-control constructor: deadlines, retry pacing, lease length,
    /// and the clock that paces backoff and lease expiry.
    pub fn start_with(id: u64, config: ReplicaConfig, clock: Arc<dyn Clock>) -> io::Result<Replica> {
        assert!(id < (1 << 16), "replica ids must fit 16 bits (ballot scheme)");
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let state = Arc::new(Mutex::new(AcceptorState::default()));
        let shutdown = Arc::new(AtomicBool::new(false));

        let st = Arc::clone(&state);
        let sd = Arc::clone(&shutdown);
        let lease = config.lease;
        let acceptor_clock = Arc::clone(&clock);
        let accept_thread = std::thread::spawn(move || {
            while !sd.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nodelay(true).ok();
                        let st = Arc::clone(&st);
                        let clock = Arc::clone(&acceptor_clock);
                        std::thread::spawn(move || acceptor_loop(st, stream, clock, lease));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });

        Ok(Replica {
            id,
            addr,
            state,
            shutdown,
            ballot_counter: AtomicU64::new(0),
            jitter: Mutex::new(StdRng::seed_from_u64(0xBA70_0000 | id)),
            config,
            clock,
            accept_thread: Some(accept_thread),
        })
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// What this replica believes was chosen (learned locally, ignoring
    /// the lease — see [`Replica::master`] for the safe accessor).
    pub fn chosen(&self) -> Option<u64> {
        self.state.lock().chosen
    }

    /// The master this replica may act on: the locally learned choice,
    /// but only while its lease is unexpired. `None` means the knowledge
    /// is stale — re-query a quorum or run an election before acting.
    pub fn master(&self) -> Option<u64> {
        let st = self.state.lock();
        match st.chosen {
            Some(v) if self.clock.now() < st.lease_expiry => Some(v),
            _ => None,
        }
    }

    /// Globally unique, monotonically increasing ballot: counter ‖ id.
    fn next_ballot(&self, at_least: u64) -> u64 {
        let min_counter = (at_least >> 16) + 1;
        let counter = self
            .ballot_counter
            .fetch_max(min_counter, Ordering::Relaxed)
            .max(min_counter);
        self.ballot_counter.store(counter + 1, Ordering::Relaxed);
        (counter << 16) | self.id
    }

    /// Sleep the backoff for election retry `attempt` (1-based):
    /// exponential, capped, plus up to +50% seeded jitter so competing
    /// proposers de-synchronize deterministically.
    fn backoff(&self, attempt: u32) {
        let exp = self
            .config
            .retry_base
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let step = exp.min(self.config.retry_max);
        let frac: f64 = self.jitter.lock().gen_range(0.0..0.5);
        let total = step + step.mul_f64(frac);
        if !total.is_zero() {
            self.clock.sleep(total);
        }
    }

    /// Run an election proposing `candidate` (usually `self.id`) as
    /// master, against the given acceptors (normally all replicas'
    /// addresses including our own). Returns the *chosen* master — which,
    /// per Paxos, may be an earlier winner rather than `candidate`.
    pub fn propose_master(
        &self,
        acceptors: &[SocketAddr],
        candidate: u64,
    ) -> Result<u64, ElectError> {
        let majority = acceptors.len() / 2 + 1;
        let mut floor = 0u64;
        let mut starved = false;
        for attempt in 0..self.config.max_attempts {
            if attempt > 0 {
                election_metrics().ballot_races.inc();
                self.backoff(attempt);
            }
            election_metrics().attempts.inc();
            starved = false;
            let ballot = self.next_ballot(floor);

            // Phase 1: prepare.
            let mut promises = 0usize;
            let mut best_accepted: Option<(u64, u64)> = None;
            let mut highest_seen = ballot;
            for &addr in acceptors {
                match self.call(addr, &PaxosMsg::Prepare { ballot }) {
                    Some(PaxosMsg::Promise {
                        ok,
                        promised,
                        accepted,
                    }) => {
                        highest_seen = highest_seen.max(promised);
                        if ok {
                            promises += 1;
                            if let Some((b, v)) = accepted {
                                if best_accepted.is_none_or(|(bb, _)| b > bb) {
                                    best_accepted = Some((b, v));
                                }
                            }
                        }
                    }
                    _ => continue,
                }
            }
            if promises < majority {
                if highest_seen == ballot {
                    // Nobody promised a higher ballot: this is a
                    // connectivity shortfall, not a competing proposer.
                    // Retry — transient loss heals across attempts; a
                    // real partition exhausts them and reports NoQuorum.
                    starved = true;
                    continue;
                }
                floor = highest_seen;
                continue;
            }

            // Phase 2: accept — a previously accepted value wins over ours.
            let value = best_accepted.map(|(_, v)| v).unwrap_or(candidate);
            let mut accepts = 0usize;
            for &addr in acceptors {
                if let Some(PaxosMsg::Accepted { ok, promised }) =
                    self.call(addr, &PaxosMsg::Accept { ballot, value })
                {
                    highest_seen = highest_seen.max(promised);
                    if ok {
                        accepts += 1;
                    }
                }
            }
            if accepts >= majority {
                // Learner broadcast (best effort).
                for &addr in acceptors {
                    self.call(addr, &PaxosMsg::Chosen { value });
                }
                let mut st = self.state.lock();
                st.chosen = Some(value);
                st.lease_expiry = self.clock.now() + self.config.lease;
                election_metrics().won.inc();
                bate_obs::info!(
                    "election.won",
                    replica = self.id,
                    master = value,
                    ballot = ballot,
                );
                return Ok(value);
            }
            floor = highest_seen;
        }
        let err = if starved {
            election_metrics().no_quorum.inc();
            ElectError::NoQuorum
        } else {
            election_metrics().exhausted.inc();
            ElectError::RetriesExhausted
        };
        bate_obs::warn!(
            "election.failed",
            replica = self.id,
            candidate = candidate,
            no_quorum = (err == ElectError::NoQuorum),
        );
        // Losing an election is a flight-recorder trigger: dump whatever
        // the ring buffered leading up to the loss so the sequence of
        // ballots/races that starved this replica is reconstructable.
        bate_obs::flight::trigger(
            "election_loss",
            bate_obs::context::current().trace_id,
        );
        Err(err)
    }

    /// Ask an acceptor what it has learned (default deadlines).
    pub fn query(addr: SocketAddr) -> Option<u64> {
        let config = ReplicaConfig::default();
        match call_with(addr, &PaxosMsg::Query, &config) {
            Some(PaxosMsg::ChosenReply { value }) => value,
            _ => None,
        }
    }

    /// One request/response exchange with an acceptor under this
    /// replica's deadlines.
    fn call(&self, addr: SocketAddr, msg: &PaxosMsg) -> Option<PaxosMsg> {
        call_with(addr, msg, &self.config)
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            t.join().ok();
        }
    }
}

/// One request/response exchange with an acceptor (short-lived
/// connection; elections are rare).
fn call_with(addr: SocketAddr, msg: &PaxosMsg, config: &ReplicaConfig) -> Option<PaxosMsg> {
    let mut stream = TcpStream::connect_timeout(&addr, config.connect_timeout).ok()?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(config.read_timeout)).ok();
    write_frame(&mut stream, msg).ok()?;
    match msg {
        // One-way learner broadcast: no reply expected.
        PaxosMsg::Chosen { .. } => Some(PaxosMsg::Query),
        _ => read_frame(&mut stream).ok(),
    }
}

/// Acceptor protocol handler: one connection, sequential requests.
fn acceptor_loop(
    state: Arc<Mutex<AcceptorState>>,
    mut stream: TcpStream,
    clock: Arc<dyn Clock>,
    lease: Duration,
) {
    loop {
        let msg: PaxosMsg = match read_frame(&mut stream) {
            Ok(m) => m,
            Err(_) => return,
        };
        let reply = {
            let mut st = state.lock();
            match msg {
                PaxosMsg::Prepare { ballot } => {
                    if ballot > st.promised {
                        st.promised = ballot;
                        Some(PaxosMsg::Promise {
                            ok: true,
                            promised: st.promised,
                            accepted: st.accepted,
                        })
                    } else {
                        Some(PaxosMsg::Promise {
                            ok: false,
                            promised: st.promised,
                            accepted: st.accepted,
                        })
                    }
                }
                PaxosMsg::Accept { ballot, value } => {
                    if ballot >= st.promised {
                        st.promised = ballot;
                        st.accepted = Some((ballot, value));
                        Some(PaxosMsg::Accepted {
                            ok: true,
                            promised: st.promised,
                        })
                    } else {
                        Some(PaxosMsg::Accepted {
                            ok: false,
                            promised: st.promised,
                        })
                    }
                }
                PaxosMsg::Query => Some(PaxosMsg::ChosenReply { value: st.chosen }),
                PaxosMsg::Chosen { value } => {
                    st.chosen = Some(value);
                    st.lease_expiry = clock.now() + lease;
                    None
                }
                // Replies are never received by an acceptor.
                _ => None,
            }
        };
        if let Some(reply) = reply {
            if write_frame(&mut stream, &reply).is_err() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_core::clock::SimClock;

    fn cluster(n: usize) -> (Vec<Replica>, Vec<SocketAddr>) {
        let replicas: Vec<Replica> = (0..n as u64).map(|i| Replica::start(i).unwrap()).collect();
        let addrs: Vec<SocketAddr> = replicas.iter().map(|r| r.addr()).collect();
        (replicas, addrs)
    }

    #[test]
    fn single_proposer_elects_itself() {
        let (replicas, addrs) = cluster(3);
        let master = replicas[1].propose_master(&addrs, 1).unwrap();
        assert_eq!(master, 1);
        // Every acceptor learned the choice.
        for addr in &addrs {
            assert_eq!(Replica::query(*addr), Some(1));
        }
    }

    #[test]
    fn second_election_returns_first_winner() {
        let (replicas, addrs) = cluster(3);
        let first = replicas[0].propose_master(&addrs, 0).unwrap();
        assert_eq!(first, 0);
        // Replica 2 campaigns later — Paxos forces it to adopt the chosen
        // value.
        let second = replicas[2].propose_master(&addrs, 2).unwrap();
        assert_eq!(second, 0, "an already-chosen master must stick");
    }

    #[test]
    fn concurrent_proposers_agree() {
        let (replicas, addrs) = cluster(5);
        let replicas = Arc::new(replicas);
        let addrs = Arc::new(addrs);
        let mut handles = Vec::new();
        let results = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3usize {
            let addrs = Arc::clone(&addrs);
            let results = Arc::clone(&results);
            let replicas = Arc::clone(&replicas);
            handles.push(std::thread::spawn(move || {
                if let Ok(v) = replicas[i].propose_master(&addrs, i as u64) {
                    results.lock().push(v);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let results = results.lock();
        assert!(!results.is_empty(), "at least one proposer must win");
        let first = results[0];
        assert!(
            results.iter().all(|&v| v == first),
            "diverging masters: {results:?}"
        );
    }

    #[test]
    fn no_quorum_fails_cleanly() {
        let (replicas, mut addrs) = cluster(3);
        // Two of three acceptors unreachable (closed ports).
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr().unwrap();
        drop(dead);
        addrs[1] = dead_addr;
        addrs[2] = dead_addr;
        assert_eq!(
            replicas[0].propose_master(&addrs, 0),
            Err(ElectError::NoQuorum)
        );
    }

    #[test]
    fn minority_acceptors_still_elect_with_quorum() {
        let (replicas, mut addrs) = cluster(5);
        // One acceptor down out of five: quorum (3) still reachable.
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr().unwrap();
        drop(dead);
        addrs[4] = dead_addr;
        let master = replicas[0].propose_master(&addrs, 0).unwrap();
        assert_eq!(master, 0);
    }

    #[test]
    fn master_lease_expires_on_the_injected_clock() {
        let clock = SimClock::shared();
        let config = ReplicaConfig {
            lease: Duration::from_secs(5),
            ..ReplicaConfig::default()
        };
        let replicas: Vec<Replica> = (0..3u64)
            .map(|i| {
                Replica::start_with(i, config.clone(), clock.clone() as Arc<dyn Clock>).unwrap()
            })
            .collect();
        let addrs: Vec<SocketAddr> = replicas.iter().map(|r| r.addr()).collect();

        replicas[0].propose_master(&addrs, 0).unwrap();
        assert_eq!(replicas[0].master(), Some(0), "fresh lease is valid");

        // Advance virtual time past the lease: local knowledge goes stale.
        clock.advance(Duration::from_secs(6));
        assert_eq!(replicas[0].master(), None, "expired lease must not serve");
        assert_eq!(
            replicas[0].chosen(),
            Some(0),
            "raw chosen value survives lease expiry"
        );

        // Re-election renews the lease and (single decree) keeps the value.
        let again = replicas[0].propose_master(&addrs, 0).unwrap();
        assert_eq!(again, 0);
        assert_eq!(replicas[0].master(), Some(0));
    }
}
