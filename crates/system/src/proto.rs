//! The controller ⇄ broker ⇄ client message vocabulary.

use crate::wire::{Decode, Encode, WireError};
use bytes::{Bytes, BytesMut};

/// One tunnel's share of a demand's allocation, as pushed to brokers.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowEntry {
    /// s-d pair index in the controller's tunnel set.
    pub pair: u32,
    /// Tunnel index within the pair.
    pub tunnel: u32,
    /// Rate limit in Mbps.
    pub rate: f64,
}

impl Encode for FlowEntry {
    fn encode(&self, buf: &mut BytesMut) {
        self.pair.encode(buf);
        self.tunnel.encode(buf);
        self.rate.encode(buf);
    }
}

impl Decode for FlowEntry {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(FlowEntry {
            pair: u32::decode(buf)?,
            tunnel: u32::decode(buf)?,
            rate: f64::decode(buf)?,
        })
    }
}

/// Protocol messages. One enum for all parties keeps the codec simple; each
/// role only sends/handles its own subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// client → controller: request admission of a single-pair BA demand.
    SubmitDemand {
        id: u64,
        src: String,
        dst: String,
        bandwidth: f64,
        /// Availability target in [0, 1].
        beta: f64,
        price: f64,
        refund_ratio: f64,
    },
    /// client → controller: demand lifetime ended.
    WithdrawDemand {
        id: u64,
    },
    /// controller → client: withdraw processed (idempotent — retrying a
    /// withdraw whose ack was lost re-acks without side effects).
    WithdrawAck {
        id: u64,
    },
    /// controller → client.
    AdmissionReply {
        id: u64,
        admitted: bool,
    },
    /// broker → controller: identify as the broker for a DC.
    RegisterBroker {
        dc: String,
    },
    /// controller → broker: install/replace a demand's flow entries.
    InstallAllocation {
        demand: u64,
        entries: Vec<FlowEntry>,
    },
    /// controller → broker: remove a demand.
    RemoveAllocation {
        demand: u64,
    },
    /// broker → controller: a fate group changed state.
    LinkReport {
        group: u32,
        up: bool,
    },
    /// broker → controller: measured delivery for a demand (statistics).
    StatsReport {
        demand: u64,
        delivered: f64,
    },
    /// Liveness probe (either direction).
    Ping {
        token: u64,
    },
    Pong {
        token: u64,
    },
    /// client → controller: request the telemetry registry.
    StatsQuery,
    /// controller → client: Prometheus text-format exposition of the
    /// controller's metrics registry.
    StatsText {
        text: String,
    },
    /// client → controller: deterministic JSONL snapshot of metrics whose
    /// names start with `prefix` (empty prefix = everything). Answered
    /// with [`Message::StatsText`].
    StatsJsonQuery {
        prefix: String,
    },
    /// client → controller: render the causal span tree for one trace id
    /// from the controller's flight-recorder ring. Answered with
    /// [`Message::StatsText`].
    TraceQuery {
        trace_id: u64,
    },
    /// client → controller: render the controller's SLO burn-rate report.
    /// Answered with [`Message::StatsText`].
    SloQuery,
}

// Message tags.
const T_SUBMIT: u8 = 1;
const T_WITHDRAW: u8 = 2;
const T_ADMISSION: u8 = 3;
const T_REGISTER: u8 = 4;
const T_INSTALL: u8 = 5;
const T_REMOVE: u8 = 6;
const T_LINK: u8 = 7;
const T_STATS: u8 = 8;
const T_PING: u8 = 9;
const T_PONG: u8 = 10;
const T_WITHDRAW_ACK: u8 = 11;
const T_STATS_QUERY: u8 = 12;
const T_STATS_TEXT: u8 = 13;
const T_STATS_JSON_QUERY: u8 = 14;
const T_TRACE_QUERY: u8 = 15;
const T_SLO_QUERY: u8 = 16;

impl Encode for Message {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Message::SubmitDemand {
                id,
                src,
                dst,
                bandwidth,
                beta,
                price,
                refund_ratio,
            } => {
                T_SUBMIT.encode(buf);
                id.encode(buf);
                src.encode(buf);
                dst.encode(buf);
                bandwidth.encode(buf);
                beta.encode(buf);
                price.encode(buf);
                refund_ratio.encode(buf);
            }
            Message::WithdrawDemand { id } => {
                T_WITHDRAW.encode(buf);
                id.encode(buf);
            }
            Message::WithdrawAck { id } => {
                T_WITHDRAW_ACK.encode(buf);
                id.encode(buf);
            }
            Message::AdmissionReply { id, admitted } => {
                T_ADMISSION.encode(buf);
                id.encode(buf);
                admitted.encode(buf);
            }
            Message::RegisterBroker { dc } => {
                T_REGISTER.encode(buf);
                dc.encode(buf);
            }
            Message::InstallAllocation { demand, entries } => {
                T_INSTALL.encode(buf);
                demand.encode(buf);
                entries.encode(buf);
            }
            Message::RemoveAllocation { demand } => {
                T_REMOVE.encode(buf);
                demand.encode(buf);
            }
            Message::LinkReport { group, up } => {
                T_LINK.encode(buf);
                group.encode(buf);
                up.encode(buf);
            }
            Message::StatsReport { demand, delivered } => {
                T_STATS.encode(buf);
                demand.encode(buf);
                delivered.encode(buf);
            }
            Message::Ping { token } => {
                T_PING.encode(buf);
                token.encode(buf);
            }
            Message::Pong { token } => {
                T_PONG.encode(buf);
                token.encode(buf);
            }
            Message::StatsQuery => {
                T_STATS_QUERY.encode(buf);
            }
            Message::StatsText { text } => {
                T_STATS_TEXT.encode(buf);
                text.encode(buf);
            }
            Message::StatsJsonQuery { prefix } => {
                T_STATS_JSON_QUERY.encode(buf);
                prefix.encode(buf);
            }
            Message::TraceQuery { trace_id } => {
                T_TRACE_QUERY.encode(buf);
                trace_id.encode(buf);
            }
            Message::SloQuery => {
                T_SLO_QUERY.encode(buf);
            }
        }
    }
}

impl Decode for Message {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let tag = u8::decode(buf)?;
        Ok(match tag {
            T_SUBMIT => Message::SubmitDemand {
                id: u64::decode(buf)?,
                src: String::decode(buf)?,
                dst: String::decode(buf)?,
                bandwidth: f64::decode(buf)?,
                beta: f64::decode(buf)?,
                price: f64::decode(buf)?,
                refund_ratio: f64::decode(buf)?,
            },
            T_WITHDRAW => Message::WithdrawDemand {
                id: u64::decode(buf)?,
            },
            T_WITHDRAW_ACK => Message::WithdrawAck {
                id: u64::decode(buf)?,
            },
            T_ADMISSION => Message::AdmissionReply {
                id: u64::decode(buf)?,
                admitted: bool::decode(buf)?,
            },
            T_REGISTER => Message::RegisterBroker {
                dc: String::decode(buf)?,
            },
            T_INSTALL => Message::InstallAllocation {
                demand: u64::decode(buf)?,
                entries: Vec::<FlowEntry>::decode(buf)?,
            },
            T_REMOVE => Message::RemoveAllocation {
                demand: u64::decode(buf)?,
            },
            T_LINK => Message::LinkReport {
                group: u32::decode(buf)?,
                up: bool::decode(buf)?,
            },
            T_STATS => Message::StatsReport {
                demand: u64::decode(buf)?,
                delivered: f64::decode(buf)?,
            },
            T_PING => Message::Ping {
                token: u64::decode(buf)?,
            },
            T_PONG => Message::Pong {
                token: u64::decode(buf)?,
            },
            T_STATS_QUERY => Message::StatsQuery,
            T_STATS_TEXT => Message::StatsText {
                text: String::decode(buf)?,
            },
            T_STATS_JSON_QUERY => Message::StatsJsonQuery {
                prefix: String::decode(buf)?,
            },
            T_TRACE_QUERY => Message::TraceQuery {
                trace_id: u64::decode(buf)?,
            },
            T_SLO_QUERY => Message::SloQuery,
            other => return Err(WireError::Malformed(format!("unknown tag {other}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let mut buf = BytesMut::new();
        msg.encode(&mut buf);
        let mut bytes = buf.freeze();
        let back = Message::decode(&mut bytes).unwrap();
        assert_eq!(msg, back);
        assert!(bytes.is_empty());
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(Message::SubmitDemand {
            id: 42,
            src: "DC1".into(),
            dst: "DC4".into(),
            bandwidth: 25.5,
            beta: 0.999,
            price: 25.5,
            refund_ratio: 0.1,
        });
        roundtrip(Message::WithdrawDemand { id: 42 });
        roundtrip(Message::WithdrawAck { id: 42 });
        roundtrip(Message::AdmissionReply {
            id: 42,
            admitted: true,
        });
        roundtrip(Message::RegisterBroker { dc: "DC3".into() });
        roundtrip(Message::InstallAllocation {
            demand: 7,
            entries: vec![
                FlowEntry {
                    pair: 1,
                    tunnel: 0,
                    rate: 100.0,
                },
                FlowEntry {
                    pair: 1,
                    tunnel: 2,
                    rate: 55.5,
                },
            ],
        });
        roundtrip(Message::RemoveAllocation { demand: 7 });
        roundtrip(Message::LinkReport {
            group: 3,
            up: false,
        });
        roundtrip(Message::StatsReport {
            demand: 7,
            delivered: 98.6,
        });
        roundtrip(Message::Ping { token: 1 });
        roundtrip(Message::Pong { token: 1 });
        roundtrip(Message::StatsQuery);
        roundtrip(Message::StatsText {
            text: "# TYPE bate_solver_solves_total counter\nbate_solver_solves_total 3\n"
                .into(),
        });
        roundtrip(Message::StatsJsonQuery {
            prefix: "bate_wire_".into(),
        });
        roundtrip(Message::StatsJsonQuery { prefix: "".into() });
        roundtrip(Message::TraceQuery {
            trace_id: 0xDEAD_BEEF_0BAD_F00D,
        });
        roundtrip(Message::SloQuery);
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut bytes = Bytes::from_static(&[99]);
        assert!(matches!(
            Message::decode(&mut bytes),
            Err(WireError::Malformed(_))
        ));
    }

    /// Negative inputs (truncated, oversized-length, garbage) return typed
    /// errors — the pre-hardening code paths that `unwrap()`ed on decode
    /// turned these into panics.
    #[test]
    fn truncated_message_returns_typed_error() {
        let msg = Message::SubmitDemand {
            id: 9,
            src: "DC1".into(),
            dst: "DC2".into(),
            bandwidth: 100.0,
            beta: 0.99,
            price: 100.0,
            refund_ratio: 0.25,
        };
        let mut buf = BytesMut::new();
        msg.encode(&mut buf);
        let full = buf.freeze();
        // Every strict prefix must decode to an error or to a *different*
        // complete message — never panic.
        for cut in 1..full.len() {
            let mut prefix = full.slice(0..cut);
            match Message::decode(&mut prefix) {
                Err(WireError::Malformed(_)) => {}
                Err(other) => panic!("unexpected error kind: {other}"),
                Ok(parsed) => assert_ne!(parsed, msg, "prefix cannot equal original"),
            }
        }
    }

    #[test]
    fn oversized_vector_length_is_rejected() {
        // An InstallAllocation claiming u32::MAX entries: the length guard
        // fires before any per-element allocation.
        let mut buf = BytesMut::new();
        5u8.encode(&mut buf); // T_INSTALL
        7u64.encode(&mut buf); // demand
        u32::MAX.encode(&mut buf); // entries length
        let mut bytes = buf.freeze();
        assert!(matches!(
            Message::decode(&mut bytes),
            Err(WireError::Malformed(_))
        ));
        // A plausible-but-unbacked length (claims 5000 entries, carries
        // none) errors on the first missing element.
        let mut buf = BytesMut::new();
        5u8.encode(&mut buf);
        7u64.encode(&mut buf);
        5000u32.encode(&mut buf);
        let mut bytes = buf.freeze();
        assert!(matches!(
            Message::decode(&mut bytes),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn garbage_bytes_never_panic() {
        // A deterministic pseudo-random garbage sweep (the proptest suite
        // in tests/codec_property.rs covers the randomized version).
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        for len in 0..64usize {
            let mut data = Vec::with_capacity(len);
            for _ in 0..len {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                data.push((x >> 56) as u8);
            }
            let mut bytes = Bytes::from(data);
            let _ = Message::decode(&mut bytes); // must not panic
        }
    }
}
