//! # bate-system — the BATE controller/broker system (§4)
//!
//! The paper implements BATE as a real system: one central controller and a
//! broker per data center, talking over long-lived TCP connections. The
//! brokers enforce allocations on OpenFlow switches and report link status
//! upward. This crate reproduces the control plane with real sockets:
//!
//! * [`wire`] — a length-prefixed binary codec over `TcpStream` (the paper
//!   uses long-lived TCP sessions "to avoid unnecessary delay"; so do we).
//! * [`proto`] — the message vocabulary: demand submission, admission
//!   replies, allocation installs, link-status reports, statistics.
//! * [`controller`] — admission control + scheduling + failure recovery
//!   behind a TCP listener; pushes allocations to registered brokers and
//!   recomputes on link-failure reports.
//! * [`broker`] — per-DC agent: registers with the controller, installs
//!   received allocations into its bandwidth enforcer, reports link events.
//! * [`enforcer`] — token-bucket rate limiting standing in for the
//!   switch-level meters (§4 "limits the actual traffic rate in each
//!   tunnel in case something is wrong on the end hosts").
//! * [`client`] — the user-facing API for submitting BA demands.
//! * [`replication`] — master election among controller replicas by
//!   single-decree Paxos (the paper's controller-HA story).
//!
//! What is *not* reproduced: the OpenFlow/VxLAN data plane (Floodlight,
//! Open vSwitch, label-based forwarding). Its observable effect — delivered
//! bandwidth under failures — is modeled by `bate-sim`'s dataplane; this
//! crate exercises the real control-plane path: submit → admit → allocate →
//! push → enforce → report → recover.

pub mod broker;
pub mod client;
pub mod controller;
pub mod enforcer;
pub(crate) mod event;
pub mod poller;
pub mod proto;
pub mod replication;
pub mod wire;

pub use broker::Broker;
pub use client::{Client, Dialer, PipelinedClient, RetryPolicy};
pub use controller::{Controller, ControllerConfig};
pub use replication::{ElectError, Replica, ReplicaConfig};
pub use wire::{Transport, WireError};
