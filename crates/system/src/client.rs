//! The user-facing client: submit and withdraw BA demands.
//!
//! Hardened for lossy control channels: every request/response exchange
//! runs under a bounded [`RetryPolicy`] — per-attempt read deadlines,
//! reconnect on transport errors, exponential backoff with deterministic
//! seeded jitter between attempts. Retries are safe because the controller
//! treats demand ids as idempotency keys: a retried `SubmitDemand` replays
//! the original admission verdict instead of double-counting (or, as the
//! pre-hardening code did, refusing) the demand, and a retried
//! `WithdrawDemand` re-acks without side effects.

use crate::proto::Message;
use crate::wire::{read_frame, write_frame_ctx, FrameCtx, Transport};
use bate_core::clock::{Clock, SystemClock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Registry handles for the client retry family.
struct ClientMetrics {
    retries: Arc<bate_obs::Counter>,
    exhausted: Arc<bate_obs::Counter>,
    backoff_ms: Arc<bate_obs::Histogram>,
}

fn client_metrics() -> &'static ClientMetrics {
    static M: OnceLock<ClientMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = bate_obs::Registry::global();
        ClientMetrics {
            retries: r.counter("bate_client_retries_total"),
            exhausted: r.counter("bate_client_retries_exhausted_total"),
            backoff_ms: r.histogram("bate_client_backoff_ms"),
        }
    })
}

/// How a client retries a request whose reply did not arrive.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per operation (first try included).
    pub max_attempts: u32,
    /// Backoff before retry `k` is `base_delay * 2^(k-1)` (plus jitter),
    /// capped at `max_delay`.
    pub base_delay: Duration,
    pub max_delay: Duration,
    /// Per-attempt reply deadline (socket read timeout).
    pub request_timeout: Duration,
    /// Seed for the deterministic jitter stream (up to +50% of the
    /// backoff step), so two clients retrying in lockstep de-synchronize
    /// without making tests non-reproducible.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            request_timeout: Duration::from_secs(1),
            jitter_seed: 0x5EED_CAFE,
        }
    }
}

impl RetryPolicy {
    /// No retries, no read deadline — the pre-hardening behavior, kept so
    /// regression tests can demonstrate the bugs the policy fixes.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            request_timeout: Duration::from_secs(3600),
            jitter_seed: 0,
        }
    }
}

/// Produces fresh transports to the controller; called on connect and on
/// every reconnect after a transport-level failure.
pub type Dialer = Box<dyn FnMut() -> io::Result<Box<dyn Transport>> + Send>;

/// A blocking client connection to the controller.
pub struct Client {
    dial: Dialer,
    stream: Option<Box<dyn Transport>>,
    clock: Arc<dyn Clock>,
    policy: RetryPolicy,
    jitter: StdRng,
    next_token: u64,
}

/// A demand submission.
#[derive(Debug, Clone)]
pub struct DemandRequest {
    pub id: u64,
    pub src: String,
    pub dst: String,
    /// Mbps.
    pub bandwidth: f64,
    /// Availability target in [0, 1].
    pub beta: f64,
    pub price: f64,
    pub refund_ratio: f64,
}

impl DemandRequest {
    /// A demand priced at one unit per Mbps with no refund clause.
    pub fn new(id: u64, src: &str, dst: &str, bandwidth: f64, beta: f64) -> DemandRequest {
        DemandRequest {
            id,
            src: src.to_string(),
            dst: dst.to_string(),
            bandwidth,
            beta,
            price: bandwidth,
            refund_ratio: 0.0,
        }
    }
}

impl Client {
    /// Connect over TCP with the default retry policy and system clock.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        Client::connect_with(
            Box::new(move || {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                Ok(Box::new(stream) as Box<dyn Transport>)
            }),
            SystemClock::shared(),
            RetryPolicy::default(),
        )
    }

    /// Full-control constructor: custom transport factory (fault proxies,
    /// in-process streams), clock, and retry policy. Dials eagerly so
    /// connection refusal surfaces here, like [`Client::connect`].
    pub fn connect_with(
        mut dial: Dialer,
        clock: Arc<dyn Clock>,
        policy: RetryPolicy,
    ) -> io::Result<Client> {
        let stream = dial()?;
        let jitter = StdRng::seed_from_u64(policy.jitter_seed);
        Ok(Client {
            dial,
            stream: Some(stream),
            clock,
            policy,
            jitter,
            next_token: 0,
        })
    }

    fn stream(&mut self) -> io::Result<&mut Box<dyn Transport>> {
        if self.stream.is_none() {
            self.stream = Some((self.dial)()?);
        }
        Ok(self.stream.as_mut().unwrap())
    }

    /// Sleep the backoff for retry number `attempt` (1-based) on the
    /// injected clock: exponential, capped, plus up to +50% jitter.
    fn backoff(&mut self, attempt: u32) {
        let exp = self
            .policy
            .base_delay
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let step = exp.min(self.policy.max_delay);
        let jitter_frac: f64 = self.jitter.gen_range(0.0..0.5);
        let total = step + step.mul_f64(jitter_frac);
        client_metrics().backoff_ms.observe_ms(total);
        if !total.is_zero() {
            self.clock.sleep(total);
        }
    }

    /// One request/reply exchange under the retry policy. `matches` picks
    /// the reply out of the stream (stale replies to earlier attempts of
    /// other operations are skipped, not treated as protocol errors).
    fn request(
        &mut self,
        msg: &Message,
        mut matches: impl FnMut(&Message) -> bool,
    ) -> io::Result<Message> {
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..self.policy.max_attempts {
            if attempt > 0 {
                client_metrics().retries.inc();
                bate_obs::warn!("client.retry", attempt = attempt);
                self.backoff(attempt);
            }
            match self.try_once(msg, &mut matches) {
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    // Tear the transport down; the next attempt redials.
                    if let Some(s) = self.stream.take() {
                        s.shutdown_both().ok();
                    }
                    last_err = Some(e);
                }
            }
        }
        client_metrics().exhausted.inc();
        bate_obs::error!("client.retries_exhausted", attempts = self.policy.max_attempts);
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::TimedOut, "retries exhausted")
        }))
    }

    fn try_once(
        &mut self,
        msg: &Message,
        matches: &mut impl FnMut(&Message) -> bool,
    ) -> io::Result<Message> {
        let timeout = self.policy.request_timeout;
        let stream = self.stream()?;
        stream.set_read_timeout(Some(timeout))?;
        // Outgoing frames carry the calling thread's span (submit and
        // withdraw open one per operation) so the controller can adopt
        // it; outside a trace this is a legacy frame.
        write_frame_ctx(&mut **stream, msg, FrameCtx::current())
            .map_err(|e| io::Error::other(e.to_string()))?;
        // Bounded skip of stale frames: replies to previous attempts that
        // arrived after we gave up on them.
        for _ in 0..16 {
            match read_frame::<Message, _>(&mut **stream) {
                Ok(reply) if matches(&reply) => return Ok(reply),
                Ok(_stale) => continue,
                Err(e) if e.is_timeout() => {
                    return Err(io::Error::new(io::ErrorKind::TimedOut, e.to_string()))
                }
                Err(e) => return Err(io::Error::other(e.to_string())),
            }
        }
        Err(io::Error::other("no matching reply in 16 frames"))
    }

    /// Submit a demand; returns whether it was admitted. Retries safely:
    /// the controller replays the original verdict for a repeated id.
    pub fn submit(&mut self, req: &DemandRequest) -> io::Result<bool> {
        // Each submission is the root of a causal trace whose id is
        // derived from the demand id — deterministic, so a seeded run
        // produces byte-identical trace ids end to end.
        let _root = bate_obs::context::root("submit", req.id);
        let mut sp = bate_obs::span!("client.submit", demand = req.id);
        let msg = Message::SubmitDemand {
            id: req.id,
            src: req.src.clone(),
            dst: req.dst.clone(),
            bandwidth: req.bandwidth,
            beta: req.beta,
            price: req.price,
            refund_ratio: req.refund_ratio,
        };
        let id = req.id;
        match self.request(&msg, |m| matches!(m, Message::AdmissionReply { id: i, .. } if *i == id))? {
            Message::AdmissionReply { admitted, .. } => {
                sp.record("admitted", admitted);
                Ok(admitted)
            }
            other => Err(io::Error::other(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Withdraw a demand. Acknowledged and idempotent: a lost ack is
    /// retried without tearing down someone else's reservation.
    pub fn withdraw(&mut self, id: u64) -> io::Result<()> {
        let _root = bate_obs::context::root("withdraw", id);
        let _sp = bate_obs::span!("client.withdraw", demand = id);
        let msg = Message::WithdrawDemand { id };
        self.request(&msg, |m| matches!(m, Message::WithdrawAck { id: i } if *i == id))?;
        Ok(())
    }

    /// Fetch the controller's metrics registry as Prometheus text-format
    /// exposition (what `batectl stats` prints).
    pub fn stats(&mut self) -> io::Result<String> {
        match self.request(&Message::StatsQuery, |m| matches!(m, Message::StatsText { .. }))? {
            Message::StatsText { text } => Ok(text),
            other => Err(io::Error::other(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Fetch a deterministic JSONL snapshot of the controller's metrics
    /// whose names start with `prefix` (empty = everything).
    pub fn stats_json(&mut self, prefix: &str) -> io::Result<String> {
        let msg = Message::StatsJsonQuery {
            prefix: prefix.to_string(),
        };
        match self.request(&msg, |m| matches!(m, Message::StatsText { .. }))? {
            Message::StatsText { text } => Ok(text),
            other => Err(io::Error::other(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Fetch the rendered causal span tree for one trace id from the
    /// controller's flight-recorder ring (what `batectl trace` prints).
    pub fn trace_tree(&mut self, trace_id: u64) -> io::Result<String> {
        let msg = Message::TraceQuery { trace_id };
        match self.request(&msg, |m| matches!(m, Message::StatsText { .. }))? {
            Message::StatsText { text } => Ok(text),
            other => Err(io::Error::other(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Fetch the controller's SLO burn-rate report (what `batectl slo`
    /// prints).
    pub fn slo_report(&mut self) -> io::Result<String> {
        match self.request(&Message::SloQuery, |m| matches!(m, Message::StatsText { .. }))? {
            Message::StatsText { text } => Ok(text),
            other => Err(io::Error::other(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Round-trip liveness probe; returns the measured RTT (on the
    /// injected clock).
    pub fn ping(&mut self) -> io::Result<Duration> {
        self.next_token += 1;
        let token = self.next_token;
        let start = self.clock.now();
        self.request(
            &Message::Ping { token },
            |m| matches!(m, Message::Pong { token: t } if *t == token),
        )?;
        Ok(self.clock.now().saturating_sub(start))
    }
}

/// A pipelined client: queue many requests locally, flush them in one
/// write, then drain the replies — no per-request round-trip wait. This
/// is what the load generator drives (fan-in throughput is bounded by
/// the controller's batch processing, not by N × RTT) and what the
/// batched-admission tests use to land many `SubmitDemand` frames in a
/// single controller wakeup.
///
/// Unlike [`Client`] there is no retry policy: the pipelined surface is
/// for controlled harnesses where the channel is reliable and
/// back-to-back framing is the point.
pub struct PipelinedClient {
    stream: TcpStream,
    wbuf: Vec<u8>,
}

impl PipelinedClient {
    pub fn connect(addr: SocketAddr) -> io::Result<PipelinedClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(PipelinedClient {
            stream,
            wbuf: Vec::new(),
        })
    }

    /// Queue a submission locally (nothing is sent until
    /// [`PipelinedClient::flush`]). Stamped with the same deterministic
    /// per-demand trace root as [`Client::submit`], so controller-side
    /// spans still attribute to the demand that caused them.
    pub fn queue_submit(&mut self, req: &DemandRequest) -> io::Result<()> {
        let _root = bate_obs::context::root("submit", req.id);
        let _sp = bate_obs::span!("client.submit", demand = req.id);
        let msg = Message::SubmitDemand {
            id: req.id,
            src: req.src.clone(),
            dst: req.dst.clone(),
            bandwidth: req.bandwidth,
            beta: req.beta,
            price: req.price,
            refund_ratio: req.refund_ratio,
        };
        let frame = crate::wire::encode_frame_ctx(&msg, FrameCtx::current())
            .map_err(|e| io::Error::other(e.to_string()))?;
        self.wbuf.extend_from_slice(&frame);
        Ok(())
    }

    /// Queue a withdrawal locally.
    pub fn queue_withdraw(&mut self, id: u64) -> io::Result<()> {
        let _root = bate_obs::context::root("withdraw", id);
        let _sp = bate_obs::span!("client.withdraw", demand = id);
        let frame =
            crate::wire::encode_frame_ctx(&Message::WithdrawDemand { id }, FrameCtx::current())
                .map_err(|e| io::Error::other(e.to_string()))?;
        self.wbuf.extend_from_slice(&frame);
        Ok(())
    }

    /// Send everything queued in one write (one TCP segment when it
    /// fits, which is what lands a whole batch in one controller
    /// wakeup).
    pub fn flush(&mut self) -> io::Result<()> {
        use io::Write as _;
        self.stream.write_all(&self.wbuf)?;
        self.stream.flush()?;
        self.wbuf.clear();
        Ok(())
    }

    /// Block for the next `AdmissionReply`, returning `(id, admitted)`.
    /// Replies arrive in submission order (the controller folds batches
    /// FCFS and the wire preserves per-connection order).
    pub fn recv_verdict(&mut self) -> io::Result<(u64, bool)> {
        loop {
            match read_frame::<Message, _>(&mut self.stream)
                .map_err(|e| io::Error::other(e.to_string()))?
            {
                Message::AdmissionReply { id, admitted } => return Ok((id, admitted)),
                // Skip interleaved non-reply traffic (acks of pipelined
                // withdraws being drained out of order by the caller).
                _ => continue,
            }
        }
    }

    /// Block for the next `WithdrawAck`, returning the acked id.
    pub fn recv_withdraw_ack(&mut self) -> io::Result<u64> {
        loop {
            match read_frame::<Message, _>(&mut self.stream)
                .map_err(|e| io::Error::other(e.to_string()))?
            {
                Message::WithdrawAck { id } => return Ok(id),
                _ => continue,
            }
        }
    }
}
