//! The user-facing client: submit and withdraw BA demands.

use crate::proto::Message;
use crate::wire::{read_frame, write_frame};
use std::io;
use std::net::{SocketAddr, TcpStream};

/// A blocking client connection to the controller.
pub struct Client {
    stream: TcpStream,
    next_token: u64,
}

/// A demand submission.
#[derive(Debug, Clone)]
pub struct DemandRequest {
    pub id: u64,
    pub src: String,
    pub dst: String,
    /// Mbps.
    pub bandwidth: f64,
    /// Availability target in [0, 1].
    pub beta: f64,
    pub price: f64,
    pub refund_ratio: f64,
}

impl DemandRequest {
    /// A demand priced at one unit per Mbps with no refund clause.
    pub fn new(id: u64, src: &str, dst: &str, bandwidth: f64, beta: f64) -> DemandRequest {
        DemandRequest {
            id,
            src: src.to_string(),
            dst: dst.to_string(),
            bandwidth,
            beta,
            price: bandwidth,
            refund_ratio: 0.0,
        }
    }
}

impl Client {
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            next_token: 0,
        })
    }

    /// Submit a demand; returns whether it was admitted.
    pub fn submit(&mut self, req: &DemandRequest) -> io::Result<bool> {
        write_frame(
            &mut self.stream,
            &Message::SubmitDemand {
                id: req.id,
                src: req.src.clone(),
                dst: req.dst.clone(),
                bandwidth: req.bandwidth,
                beta: req.beta,
                price: req.price,
                refund_ratio: req.refund_ratio,
            },
        )
        .map_err(|e| io::Error::other(e.to_string()))?;
        match read_frame::<Message>(&mut self.stream) {
            Ok(Message::AdmissionReply { id, admitted }) if id == req.id => Ok(admitted),
            Ok(other) => Err(io::Error::other(format!("unexpected reply: {other:?}"))),
            Err(e) => Err(io::Error::other(e.to_string())),
        }
    }

    /// Withdraw a demand (fire-and-forget, like the paper's FCFS teardown).
    pub fn withdraw(&mut self, id: u64) -> io::Result<()> {
        write_frame(&mut self.stream, &Message::WithdrawDemand { id })
            .map_err(|e| io::Error::other(e.to_string()))
    }

    /// Round-trip liveness probe; returns the measured RTT.
    pub fn ping(&mut self) -> io::Result<std::time::Duration> {
        self.next_token += 1;
        let token = self.next_token;
        let start = std::time::Instant::now();
        write_frame(&mut self.stream, &Message::Ping { token })
            .map_err(|e| io::Error::other(e.to_string()))?;
        match read_frame::<Message>(&mut self.stream) {
            Ok(Message::Pong { token: t }) if t == token => Ok(start.elapsed()),
            Ok(other) => Err(io::Error::other(format!("unexpected reply: {other:?}"))),
            Err(e) => Err(io::Error::other(e.to_string())),
        }
    }
}
