//! Registry integration tests (ISSUE 3 satellite): concurrent updates
//! land exactly, histogram quantiles track a sorted-vector oracle, and
//! exposition output is stable-ordered.

use bate_obs::metrics::{MetricKind, Registry};
use std::sync::Arc;

/// Deterministic xorshift64* — bate-obs is dependency-free, so the test
/// brings its own generator instead of pulling in `rand`.
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[test]
fn concurrent_updates_from_eight_threads_land_exactly() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 100_000;

    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                // Half the threads re-look-up each metric by name, half
                // cache the handle — both paths must be exact.
                if t % 2 == 0 {
                    let c = registry.counter("bate_test_hits_total");
                    let h = registry.histogram("bate_test_lat_ms");
                    for i in 0..PER_THREAD {
                        c.inc();
                        h.observe((i % 97 + 1) as f64);
                    }
                } else {
                    for i in 0..PER_THREAD {
                        registry.counter("bate_test_hits_total").inc();
                        registry
                            .histogram("bate_test_lat_ms")
                            .observe((i % 97 + 1) as f64);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let expected = THREADS as u64 * PER_THREAD;
    assert_eq!(registry.counter("bate_test_hits_total").get(), expected);
    let h = registry.histogram("bate_test_lat_ms");
    assert_eq!(h.count(), expected);
    // Σ of (i % 97 + 1) over 100k per thread, exact in f64 (integers
    // well below 2^53).
    let per_thread_sum: f64 = (0..PER_THREAD).map(|i| (i % 97 + 1) as f64).sum();
    assert_eq!(h.sum(), per_thread_sum * THREADS as f64);
    assert_eq!(h.min(), 1.0);
    assert_eq!(h.max(), 97.0);
}

#[test]
fn histogram_quantiles_match_sorted_vector_oracle() {
    let mut rng = XorShift(0x5eed_0b5e_1234_5678);
    // Three shapes: uniform, heavy-tailed (x^4 spread over decades), and
    // a bimodal mix — exercising narrow and wide octave coverage.
    type Shape = Box<dyn Fn(&mut XorShift) -> f64>;
    let shapes: Vec<(&str, Shape)> = vec![
        ("uniform", Box::new(|r: &mut XorShift| 1.0 + 99.0 * r.next_f64())),
        (
            "heavy_tail",
            Box::new(|r: &mut XorShift| {
                let u = r.next_f64();
                0.001 + 1e6 * u * u * u * u
            }),
        ),
        (
            "bimodal",
            Box::new(|r: &mut XorShift| {
                if r.next_u64().is_multiple_of(4) {
                    500.0 + 50.0 * r.next_f64()
                } else {
                    2.0 + r.next_f64()
                }
            }),
        ),
    ];

    let registry = Registry::new();
    for (name, gen) in &shapes {
        let h = registry.histogram(name);
        let mut samples: Vec<f64> = (0..20_000).map(|_| gen(&mut rng)).collect();
        for &s in &samples {
            h.observe(s);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());

        for q in [0.5, 0.95, 0.99] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let oracle = samples[rank - 1];
            let est = h.quantile(q);
            // Log-linear buckets with 8 sub-buckets per octave bound the
            // relative error by 1/8 = 12.5%; the estimate reports the
            // bucket's upper bound, so it can only overshoot.
            assert!(
                est >= oracle * (1.0 - 1e-12),
                "{name} q={q}: est {est} < oracle {oracle}"
            );
            assert!(
                est <= oracle * 1.125 + 1e-9,
                "{name} q={q}: est {est} overshoots oracle {oracle} by more than 12.5%"
            );
        }
    }
}

#[test]
fn exposition_is_stable_ordered_regardless_of_registration_order() {
    // Register the same metric set in two different orders; both
    // renderings must be byte-identical and name-sorted.
    let names = [
        "bate_z_last_total",
        "bate_a_first_total",
        "bate_m_middle_total",
        "bate_wire_frames_total",
        "bate_solver_pivots_total",
    ];
    let forward = Registry::new();
    for n in &names {
        forward.counter(n).add(7);
    }
    let reverse = Registry::new();
    for n in names.iter().rev() {
        reverse.counter(n).add(7);
    }

    let a = forward.render_prometheus();
    let b = reverse.render_prometheus();
    assert_eq!(a, b, "exposition must not depend on registration order");

    let metric_lines: Vec<&str> = a
        .lines()
        .filter(|l| !l.starts_with('#'))
        .collect();
    let mut sorted = metric_lines.clone();
    sorted.sort();
    assert_eq!(metric_lines, sorted, "metric lines must be name-sorted");

    // Same stability holds for the JSONL snapshot, including filtering.
    let ja = forward.snapshot_jsonl();
    let jb = reverse.snapshot_jsonl();
    assert_eq!(ja, jb);
    let filtered = forward.snapshot_jsonl_filtered(|name, kind| {
        kind == MetricKind::Counter && name.contains("wire")
    });
    assert_eq!(
        filtered,
        "{\"metric\":\"bate_wire_frames_total\",\"type\":\"counter\",\"value\":7}\n"
    );
}
