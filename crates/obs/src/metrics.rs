//! Lock-sharded metrics registry: counters, gauges, and log-linear
//! histograms with Prometheus text exposition and deterministic JSONL
//! snapshots.
//!
//! ## Design
//!
//! Registration (name → handle lookup) takes a per-shard mutex; the hot
//! path — incrementing a counter, observing a histogram sample — touches
//! only atomics on an `Arc`-shared handle. Callers on hot paths should
//! register once and cache the handle (e.g. in a `OnceLock`); casual
//! callers can re-look-up by name, which costs one FNV hash and one
//! uncontended shard lock.
//!
//! ## Histograms
//!
//! Buckets are log-linear: each power-of-two octave is split into
//! [`SUBS`] equal-width sub-buckets, giving a worst-case relative
//! quantile error of `1/SUBS` (12.5%) over the full tracked range
//! [2⁻²⁰, 2⁴¹) with a fixed 4 KB footprint and O(1) `observe`. Exact
//! min/max are tracked separately so extreme quantiles degrade to the
//! true extremes rather than a bucket boundary.
//!
//! ## Determinism
//!
//! Counter and gauge state is exactly reproducible whenever the observed
//! program is (atomic adds commute). Histogram *sums* accumulate f64 in
//! arrival order and wall-clock *timing* histograms are inherently
//! nondeterministic; deterministic snapshots therefore go through
//! [`Registry::snapshot_jsonl_filtered`] with a predicate that selects
//! the reproducible families (see `scripts/obscheck.sh`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Sub-buckets per power-of-two octave (must be a power of two).
pub const SUBS: usize = 8;
const SUB_BITS: u32 = 3;
/// Lowest tracked octave: values below 2^MIN_EXP land in the underflow
/// bucket. 2⁻²⁰ ≈ 1 µs when observing seconds.
const MIN_EXP: i64 = -20;
/// Highest tracked octave: values at or above 2^(MAX_EXP+1) land in the
/// overflow bucket. 2⁴¹ ≈ 2.2e12.
const MAX_EXP: i64 = 40;
const OCTAVES: usize = (MAX_EXP - MIN_EXP + 1) as usize;
/// underflow + log-linear grid + overflow
const BUCKETS: usize = OCTAVES * SUBS + 2;

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins f64 gauge (stored as bits in an `AtomicU64`).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Lock-free log-linear histogram (see module docs for the bucket layout).
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    /// Σ samples, accumulated via CAS on the f64 bit pattern.
    sum_bits: AtomicU64,
    /// Exact extremes, CAS-min/max on f64 bits (positive values only, so
    /// the IEEE-754 total order matches the numeric order on the raw bits).
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        // Safety of the array init: AtomicU64::new(0) is not Copy, so build
        // through a Vec and convert.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> = v.into_boxed_slice().try_into().unwrap();
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

/// Bucket index for a sample. Non-positive / non-finite values clamp to
/// the underflow bucket (0); values ≥ 2^(MAX_EXP+1) go to the overflow
/// bucket (BUCKETS-1).
fn bucket_index(v: f64) -> usize {
    if !v.is_finite() || v < f64::from_bits(((MIN_EXP + 1023) as u64) << 52) {
        // Below the lowest octave (covers v <= 0, NaN, subnormals).
        return if v.is_finite() && v >= 0.0 {
            0
        } else if v.is_infinite() && v > 0.0 {
            BUCKETS - 1
        } else {
            0
        };
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
    if exp > MAX_EXP {
        return BUCKETS - 1;
    }
    let sub = ((bits >> (52 - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    1 + (exp - MIN_EXP) as usize * SUBS + sub
}

/// Inclusive upper bound of bucket `i` (the `le` label in exposition).
fn bucket_upper(i: usize) -> f64 {
    if i == 0 {
        return f64::from_bits(((MIN_EXP + 1023) as u64) << 52); // 2^MIN_EXP
    }
    if i >= BUCKETS - 1 {
        return f64::INFINITY;
    }
    let g = i - 1;
    let exp = MIN_EXP + (g / SUBS) as i64;
    let sub = (g % SUBS) as f64;
    let base = f64::from_bits(((exp + 1023) as u64) << 52);
    base * (1.0 + (sub + 1.0) / SUBS as f64)
}

impl Histogram {
    pub fn observe(&self, v: f64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Σ via CAS on bits.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        if v.is_finite() && v >= 0.0 {
            // min/max on raw bits: valid because non-negative f64 bits
            // order the same as the values.
            let vb = v.to_bits();
            let mut cur = self.min_bits.load(Ordering::Relaxed);
            while vb < cur || f64::from_bits(cur).is_infinite() {
                match self.min_bits.compare_exchange_weak(
                    cur,
                    vb,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
            let mut cur = self.max_bits.load(Ordering::Relaxed);
            while vb > cur {
                match self.max_bits.compare_exchange_weak(
                    cur,
                    vb,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Observe a duration in milliseconds (the workspace's timing unit).
    pub fn observe_ms(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64() * 1e3);
    }

    /// Observe a duration in nanoseconds. Sub-millisecond work (the
    /// row-generation separation sweeps) would collapse into the lowest
    /// buckets at ms resolution; ns keeps the log-linear layout useful.
    pub fn observe_ns(&self, d: std::time::Duration) {
        self.observe(d.as_nanos() as f64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    pub fn min(&self) -> f64 {
        let v = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        if v.is_infinite() {
            0.0
        } else {
            v
        }
    }

    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// Estimated value at quantile `q` ∈ [0, 1]: the upper bound of the
    /// bucket holding the rank-⌈q·n⌉ sample (≤ 1/SUBS relative error),
    /// clamped to the exact observed [min, max].
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max();
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Standard cumulative `(le, count)` series over a **fixed** grid:
    /// one `le` per octave boundary (the underflow bound first), the
    /// same 1 + [`OCTAVES`](self) points for every histogram regardless
    /// of where samples landed — the shape Prometheus scrapers expect,
    /// where only counts vary between states. Overflow samples appear
    /// only in the `+Inf` bucket the renderer appends.
    fn cumulative_octave_points(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(OCTAVES + 1);
        // Underflow bucket: everything at or below 2^MIN_EXP.
        let mut cum = self.buckets[0].load(Ordering::Relaxed);
        out.push((bucket_upper(0), cum));
        for o in 0..OCTAVES {
            for s in 0..SUBS {
                cum += self.buckets[1 + o * SUBS + s].load(Ordering::Relaxed);
            }
            // Upper bound of the octave's last sub-bucket: 2^(MIN_EXP+o+1).
            out.push((bucket_upper(o * SUBS + SUBS), cum));
        }
        out
    }
}

/// The kinds a registered metric can have (used by snapshot filters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> MetricKind {
        match self {
            Metric::Counter(_) => MetricKind::Counter,
            Metric::Gauge(_) => MetricKind::Gauge,
            Metric::Histogram(_) => MetricKind::Histogram,
        }
    }
}

const SHARDS: usize = 16;

/// Lock-sharded name → metric map. Cheap to clone handles out of; the
/// shard mutexes are only held during registration/lookup and rendering.
pub struct Registry {
    shards: [Mutex<HashMap<String, Metric>>; SHARDS],
    /// name → `# HELP` text (see [`Registry::describe`]).
    help: Mutex<HashMap<String, String>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            help: Mutex::new(HashMap::new()),
        }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-global registry (what instrumented crates record into).
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn shard(&self, name: &str) -> &Mutex<HashMap<String, Metric>> {
        &self.shards[(fnv1a(name) % SHARDS as u64) as usize]
    }

    /// Get or register a counter. Panics if `name` is already registered
    /// as a different kind (a programming error, not a runtime condition).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut shard = self.shard(name).lock().unwrap();
        let m = shard
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())));
        match m {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as {:?}", other.kind()),
        }
    }

    /// Get or register a gauge (same kind-collision rules as [`counter`]).
    ///
    /// [`counter`]: Registry::counter
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut shard = self.shard(name).lock().unwrap();
        let m = shard
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())));
        match m {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as {:?}", other.kind()),
        }
    }

    /// Get or register a histogram (same kind-collision rules as
    /// [`counter`]).
    ///
    /// [`counter`]: Registry::counter
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut shard = self.shard(name).lock().unwrap();
        let m = shard
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())));
        match m {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as {:?}", other.kind()),
        }
    }

    /// Attach `# HELP` text to a metric name (idempotent; last write
    /// wins). Undescribed metrics render with a generic pointer to
    /// METRICS.md, the workspace's metric inventory.
    pub fn describe(&self, name: &str, help: &str) {
        self.help
            .lock()
            .unwrap()
            .insert(name.to_string(), help.replace('\n', " "));
    }

    fn help_for(&self, name: &str) -> String {
        self.help
            .lock()
            .unwrap()
            .get(name)
            .cloned()
            .unwrap_or_else(|| "BATE workspace metric (see METRICS.md)".to_string())
    }

    /// All metrics, sorted by name (the stable exposition order).
    fn sorted(&self) -> Vec<(String, Metric)> {
        let mut all: Vec<(String, Metric)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap();
            all.extend(shard.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Prometheus text-format exposition (sorted by metric name, so the
    /// output is stable for a given registry state): standard
    /// `# HELP`/`# TYPE` preamble per family, and histograms as the
    /// standard cumulative `_bucket{le="…"}` series over a fixed octave
    /// grid (identical bucket boundaries for every histogram and every
    /// scrape — only the counts vary).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, metric) in self.sorted() {
            out.push_str(&format!("# HELP {name} {}\n", self.help_for(&name)));
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!(
                        "# TYPE {name} gauge\n{name} {}\n",
                        fmt_f64(g.get())
                    ));
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    for (ub, cum) in h.cumulative_octave_points() {
                        out.push_str(&format!(
                            "{name}_bucket{{le=\"{}\"}} {cum}\n",
                            fmt_f64(ub)
                        ));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
                    out.push_str(&format!("{name}_sum {}\n", fmt_f64(h.sum())));
                    out.push_str(&format!("{name}_count {}\n", h.count()));
                }
            }
        }
        out
    }

    /// Deterministic JSONL snapshot: one JSON object per metric, sorted by
    /// name. See the module docs for which families are reproducible.
    pub fn snapshot_jsonl(&self) -> String {
        self.snapshot_jsonl_filtered(|_, _| true)
    }

    /// JSONL snapshot restricted to metrics where `keep(name, kind)` —
    /// the obscheck gate keeps counters/gauges and drops wall-clock
    /// timing histograms.
    pub fn snapshot_jsonl_filtered(&self, keep: impl Fn(&str, MetricKind) -> bool) -> String {
        let mut out = String::new();
        for (name, metric) in self.sorted() {
            if !keep(&name, metric.kind()) {
                continue;
            }
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!(
                        "{{\"metric\":\"{name}\",\"type\":\"counter\",\"value\":{}}}\n",
                        c.get()
                    ));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!(
                        "{{\"metric\":\"{name}\",\"type\":\"gauge\",\"value\":{}}}\n",
                        json_f64(g.get())
                    ));
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"metric\":\"{name}\",\"type\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}\n",
                        h.count(),
                        json_f64(h.sum()),
                        json_f64(h.min()),
                        json_f64(h.max()),
                        json_f64(h.p50()),
                        json_f64(h.p95()),
                        json_f64(h.p99()),
                    ));
                }
            }
        }
        out
    }
}

/// Shortest-roundtrip f64 formatting (Rust's `{}` is deterministic for a
/// given bit pattern, which is all the stable-output guarantee needs).
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

/// f64 as a JSON value: non-finite becomes `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("c_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same underlying counter.
        assert_eq!(r.counter("c_total").get(), 5);
        let g = r.gauge("g");
        g.set(2.5);
        g.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_collision_panics() {
        let r = Registry::new();
        r.counter("m");
        r.gauge("m");
    }

    #[test]
    fn bucket_index_and_upper_are_consistent() {
        // Every tracked value lands in a bucket whose bounds contain it.
        let mut v = 1.1e-6;
        while v < 1e12 {
            let i = bucket_index(v);
            assert!(v <= bucket_upper(i) * (1.0 + 1e-12), "v={v} i={i}");
            if i > 1 {
                assert!(v > bucket_upper(i - 1) * (1.0 - 1e-12), "v={v} i={i}");
            }
            v *= 1.37;
        }
        // Degenerate inputs clamp instead of panicking.
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::INFINITY), BUCKETS - 1);
        assert_eq!(bucket_index(1e300), BUCKETS - 1);
    }

    #[test]
    fn histogram_tracks_exact_extremes() {
        let h = Histogram::default();
        for v in [3.0, 0.25, 100.0, 7.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 110.25).abs() < 1e-9);
        assert_eq!(h.min(), 0.25);
        assert_eq!(h.max(), 100.0);
        // Quantiles clamp to the exact extremes.
        assert_eq!(h.quantile(0.0), 0.25);
        assert_eq!(h.quantile(1.0), 100.0);
    }

    #[test]
    fn prometheus_rendering_has_help_type_and_standard_cumulative_buckets() {
        let r = Registry::new();
        r.counter("a_total").add(3);
        r.describe("a_total", "Things that\nhappened.");
        let h = r.histogram("lat_ms");
        h.observe(1.0);
        h.observe(2.0);
        h.observe(1000.0);
        let text = r.render_prometheus();
        // HELP precedes TYPE for every family; newlines are flattened.
        assert!(text.contains("# HELP a_total Things that happened.\n# TYPE a_total counter\na_total 3\n"));
        assert!(text.contains("# HELP lat_ms BATE workspace metric (see METRICS.md)\n# TYPE lat_ms histogram\n"));
        assert!(text.contains("lat_ms_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_ms_count 3\n"));
        let cum: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("lat_ms_bucket") && !l.contains("+Inf"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        // Standard shape: the full fixed grid is present (underflow bound
        // plus one boundary per octave), counts are cumulative
        // (non-decreasing), and the last finite bucket holds all samples.
        assert_eq!(cum.len(), OCTAVES + 1, "fixed grid regardless of data");
        assert!(cum.windows(2).all(|w| w[0] <= w[1]), "cumulative: {cum:?}");
        assert_eq!(*cum.last().unwrap(), 3);
        // An empty histogram renders the same grid with zero counts.
        let r2 = Registry::new();
        r2.histogram("lat_ms");
        let grid = |text: &str| -> Vec<String> {
            text.lines()
                .filter(|l| l.starts_with("lat_ms_bucket") && !l.contains("+Inf"))
                .map(|l| l.split(' ').next().unwrap().to_string())
                .collect()
        };
        assert_eq!(
            grid(&r2.render_prometheus()),
            grid(&text),
            "le grid must not depend on samples"
        );
    }
}
