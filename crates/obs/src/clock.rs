//! Time as a capability: the [`Clock`] trait and its real / simulated
//! implementations.
//!
//! Everything time-dependent in the control plane — client retry backoff,
//! broker wait deadlines, replication lease and election backoff, the
//! controller's Online Scheduler period, the sim engine's compute-time
//! accounting — takes a `&dyn Clock` (usually as an `Arc<dyn Clock>`)
//! instead of calling `Instant::now()` / `thread::sleep` directly. Tests
//! substitute [`SimClock`] and become deterministic and sleep-free; the
//! default everywhere is [`SystemClock`].
//!
//! The trait lives in `bate-obs` (the bottom of the workspace dependency
//! graph) so that trace timestamps and metric timings can share the same
//! time source as the components they observe; `bate-core` re-exports it
//! under the original `bate_core::clock` path, so downstream imports are
//! unaffected by the move.
//!
//! ## `SimClock` semantics
//!
//! `SimClock` is a *virtual-time* clock designed for multi-threaded
//! control-plane tests where no single driver knows every sleeper:
//!
//! * `now()` reads the current virtual instant.
//! * `sleep(d)` never blocks the OS thread. It advances virtual time to
//!   `max(current, entry + d)` — i.e. the sleeper itself pushes time
//!   forward, and concurrent sleepers coalesce instead of adding up
//!   (two threads sleeping 10 ms in parallel advance time by ~10 ms, not
//!   20 ms). This keeps fault-injection tests with retry backoff loops
//!   instant in real time while preserving a monotone, causally ordered
//!   virtual timeline.
//! * `advance(d)` lets a test driver inject time directly (lease expiry,
//!   scheduler periods); `advance_to(t)` jumps to an absolute virtual
//!   instant without ever moving backwards (the sim engine drives event
//!   time this way).
//!
//! The one behavior `SimClock` deliberately does not reproduce is "a sleep
//! blocks until someone advances time": with real sockets in the loop there
//! is no global event queue that could know when to advance, and blocking
//! virtual sleeps are exactly the deadlock-prone pattern that made the
//! original wall-clock tests flaky.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source plus the ability to wait.
pub trait Clock: Send + Sync {
    /// Time elapsed since this clock's epoch.
    fn now(&self) -> Duration;

    /// Wait for `d` of this clock's time to pass.
    fn sleep(&self, d: Duration);

    /// Convenience: `now()` in seconds (the sim engine's native unit).
    fn now_secs(&self) -> f64 {
        self.now().as_secs_f64()
    }
}

/// The real wall clock: `Instant`-anchored `now`, `thread::sleep` waits.
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    pub fn new() -> SystemClock {
        SystemClock {
            epoch: Instant::now(),
        }
    }

    /// A shared handle, ready to thread through components.
    pub fn shared() -> Arc<dyn Clock> {
        Arc::new(SystemClock::new())
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// Deterministic virtual time for tests (see module docs for semantics).
#[derive(Debug, Default)]
pub struct SimClock {
    /// Virtual nanoseconds since the epoch.
    nanos: AtomicU64,
}

impl SimClock {
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// A shared handle, ready to thread through components.
    pub fn shared() -> Arc<SimClock> {
        Arc::new(SimClock::new())
    }

    /// Inject `d` of virtual time (test-driver side).
    pub fn advance(&self, d: Duration) {
        self.nanos
            .fetch_add(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::SeqCst);
    }

    /// Jump to the absolute virtual instant `t`, never moving backwards.
    /// Drivers replaying a timestamped event stream (the sim engine) call
    /// this at each event so `now()` tracks event time monotonically.
    pub fn advance_to(&self, t: Duration) {
        let target = t.as_nanos().min(u64::MAX as u128) as u64;
        let mut cur = self.nanos.load(Ordering::SeqCst);
        while cur < target {
            match self
                .nanos
                .compare_exchange(cur, target, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }
}

impl Clock for SimClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }

    fn sleep(&self, d: Duration) {
        // Advance to max(current, entry + d): the sleeper pushes time
        // forward, concurrent sleepers coalesce.
        let entry = self.nanos.load(Ordering::SeqCst);
        let target = entry.saturating_add(d.as_nanos().min(u64::MAX as u128) as u64);
        let mut cur = entry;
        while cur < target {
            match self
                .nanos
                .compare_exchange(cur, target, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotone() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn sim_clock_sleep_advances_virtually() {
        let c = SimClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.sleep(Duration::from_millis(10));
        assert_eq!(c.now(), Duration::from_millis(10));
        c.advance(Duration::from_secs(1));
        assert_eq!(c.now(), Duration::from_millis(1010));
    }

    #[test]
    fn sim_clock_concurrent_sleeps_coalesce() {
        let c = Arc::new(SimClock::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || c.sleep(Duration::from_millis(10)))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // All eight threads entered at t≈0; time advanced to at most the
        // sum but at least one sleep's worth. With true concurrency it is
        // usually exactly 10 ms; sequential scheduling bounds it by 80 ms.
        let now = c.now();
        assert!(now >= Duration::from_millis(10));
        assert!(now <= Duration::from_millis(80));
    }

    #[test]
    fn sim_clock_never_goes_backwards() {
        let c = SimClock::new();
        c.advance(Duration::from_secs(5));
        c.sleep(Duration::from_millis(1));
        assert!(c.now() >= Duration::from_secs(5));
    }

    #[test]
    fn sim_clock_advance_to_is_monotone() {
        let c = SimClock::new();
        c.advance_to(Duration::from_secs(3));
        assert_eq!(c.now(), Duration::from_secs(3));
        // Backwards jumps are ignored.
        c.advance_to(Duration::from_secs(1));
        assert_eq!(c.now(), Duration::from_secs(3));
        c.advance_to(Duration::from_secs(7));
        assert_eq!(c.now(), Duration::from_secs(7));
    }
}
