//! Declarative SLOs over registry snapshots with multi-window burn-rate
//! alerting.
//!
//! A [`SloSpec`] names an objective over already-registered metrics —
//! a histogram quantile bound (admission p99) or a bad/total counter
//! ratio budget (cold-resolve fraction, hard-violation fraction). An
//! [`SloEngine`] is fed one sample per scheduling round
//! ([`SloEngine::record_sample`]) and evaluates each spec over two
//! trailing windows (short and long, in samples): the **burn rate** is
//! the fraction of error budget consumed per unit budget in that window
//! (1.0 = consuming exactly the budget), and an alert fires only when
//! *both* windows burn above the alert factor — the classic
//! multi-window guard against paging on a single noisy round while
//! still catching sustained burn fast.
//!
//! Reports ([`SloEngine::render_report`]) are deterministic text for a
//! given sample history, which is what lets `scripts/obscheck.sh` diff
//! them across same-seed runs (quantile specs over wall-clock
//! histograms are the exception; deterministic harnesses restrict
//! themselves to counter-ratio specs).

use crate::metrics::Registry;
use std::sync::Mutex;

/// What a spec constrains.
#[derive(Debug, Clone)]
pub enum SloKind {
    /// `quantile(q)` of `metric` must stay at or below `bound`;
    /// `allowed` is the tolerated fraction of breaching samples (the
    /// error budget).
    QuantileBelow {
        metric: String,
        q: f64,
        bound: f64,
        allowed: f64,
    },
    /// `bad / total` (both counters) must stay at or below `budget`.
    BadRatioBelow {
        bad: String,
        total: String,
        budget: f64,
    },
}

/// A named service-level objective.
#[derive(Debug, Clone)]
pub struct SloSpec {
    pub name: &'static str,
    pub kind: SloKind,
}

/// The standard BATE objectives: admission p99 latency, warm-hit rate,
/// and the BA-guarantee rate (scheduling rounds without a hard
/// placement violation).
pub fn standard_specs() -> Vec<SloSpec> {
    let mut specs = vec![SloSpec {
        name: "admission_p99_ms",
        kind: SloKind::QuantileBelow {
            metric: "bate_admission_latency_ms".into(),
            q: 0.99,
            bound: 50.0,
            allowed: 0.05,
        },
    }];
    specs.extend(deterministic_specs());
    specs
}

/// The counter-ratio subset of [`standard_specs`] — reproducible across
/// same-seed runs, so deterministic harnesses report only these.
pub fn deterministic_specs() -> Vec<SloSpec> {
    vec![
        SloSpec {
            name: "warm_hit_rate",
            kind: SloKind::BadRatioBelow {
                bad: "bate_warm_cold_rounds_total".into(),
                total: "bate_warm_rounds_total".into(),
                budget: 0.35,
            },
        },
        SloSpec {
            name: "ba_guarantee_rate",
            kind: SloKind::BadRatioBelow {
                bad: "bate_sched_hard_violations_total".into(),
                total: "bate_sched_rounds_total".into(),
                budget: 0.01,
            },
        },
    ]
}

/// One spec's reading at one sample instant.
#[derive(Debug, Clone, Copy)]
struct SloPoint {
    /// Cumulative bad / total counter values (ratio specs).
    bad: f64,
    total: f64,
    /// Quantile estimate and breach flag (quantile specs).
    value: f64,
    breach: bool,
}

/// Evaluates specs over a growing sample history.
pub struct SloEngine {
    specs: Vec<SloSpec>,
    short_window: usize,
    long_window: usize,
    alert_factor: f64,
    /// `history[sample][spec]`.
    history: Mutex<Vec<Vec<SloPoint>>>,
}

/// One spec's evaluation (see [`SloEngine::evaluate`]).
#[derive(Debug, Clone)]
pub struct SloStatus {
    pub name: &'static str,
    /// Current level: quantile value, or bad/total ratio.
    pub current: f64,
    pub burn_short: f64,
    pub burn_long: f64,
    pub alert: bool,
}

impl SloEngine {
    /// Engine with default windows: short = 5 samples, long = 25,
    /// alert when both burn at ≥ 2x budget.
    pub fn new(specs: Vec<SloSpec>) -> SloEngine {
        SloEngine::with_windows(specs, 5, 25, 2.0)
    }

    pub fn with_windows(
        specs: Vec<SloSpec>,
        short_window: usize,
        long_window: usize,
        alert_factor: f64,
    ) -> SloEngine {
        SloEngine {
            specs,
            short_window: short_window.max(1),
            long_window: long_window.max(1),
            alert_factor,
            history: Mutex::new(Vec::new()),
        }
    }

    /// The process-global engine over [`standard_specs`] (what the
    /// controller samples each scheduling round and `batectl slo`
    /// reports).
    pub fn global() -> &'static SloEngine {
        static G: std::sync::OnceLock<SloEngine> = std::sync::OnceLock::new();
        G.get_or_init(|| SloEngine::new(standard_specs()))
    }

    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Number of recorded samples.
    pub fn samples(&self) -> usize {
        self.history.lock().unwrap().len()
    }

    /// Read every spec's inputs from `registry` and append one sample.
    pub fn record_sample(&self, registry: &Registry) {
        let points: Vec<SloPoint> = self
            .specs
            .iter()
            .map(|spec| match &spec.kind {
                SloKind::QuantileBelow {
                    metric, q, bound, ..
                } => {
                    let h = registry.histogram(metric);
                    let value = h.quantile(*q);
                    SloPoint {
                        bad: 0.0,
                        total: h.count() as f64,
                        value,
                        breach: h.count() > 0 && value > *bound,
                    }
                }
                SloKind::BadRatioBelow { bad, total, .. } => SloPoint {
                    bad: registry.counter(bad).get() as f64,
                    total: registry.counter(total).get() as f64,
                    value: 0.0,
                    breach: false,
                },
            })
            .collect();
        self.history.lock().unwrap().push(points);
    }

    /// Burn rate of spec `si` over the trailing `window` samples.
    fn burn(&self, history: &[Vec<SloPoint>], si: usize, window: usize) -> f64 {
        if history.is_empty() {
            return 0.0;
        }
        let last = history.len() - 1;
        let first = last.saturating_sub(window.saturating_sub(1));
        match &self.specs[si].kind {
            SloKind::QuantileBelow { allowed, .. } => {
                let n = last - first + 1;
                let breaches = history[first..=last]
                    .iter()
                    .filter(|p| p[si].breach)
                    .count();
                let frac = breaches as f64 / n as f64;
                if *allowed > 0.0 {
                    frac / allowed
                } else if frac > 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                }
            }
            SloKind::BadRatioBelow { budget, .. } => {
                // Counter deltas across the window; the window's first
                // sample is the baseline (cumulative counters).
                let base = if first == 0 {
                    SloPoint {
                        bad: 0.0,
                        total: 0.0,
                        value: 0.0,
                        breach: false,
                    }
                } else {
                    history[first - 1][si]
                };
                let dbad = (history[last][si].bad - base.bad).max(0.0);
                let dtotal = (history[last][si].total - base.total).max(0.0);
                if dtotal <= 0.0 {
                    return 0.0;
                }
                let frac = dbad / dtotal;
                if *budget > 0.0 {
                    frac / budget
                } else if frac > 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                }
            }
        }
    }

    /// Evaluate every spec over the recorded history.
    pub fn evaluate(&self) -> Vec<SloStatus> {
        let history = self.history.lock().unwrap();
        self.specs
            .iter()
            .enumerate()
            .map(|(si, spec)| {
                let current = match (&spec.kind, history.last()) {
                    (SloKind::QuantileBelow { .. }, Some(points)) => points[si].value,
                    (SloKind::BadRatioBelow { .. }, Some(points)) => {
                        let p = points[si];
                        if p.total > 0.0 {
                            p.bad / p.total
                        } else {
                            0.0
                        }
                    }
                    (_, None) => 0.0,
                };
                let burn_short = self.burn(&history, si, self.short_window);
                let burn_long = self.burn(&history, si, self.long_window);
                SloStatus {
                    name: spec.name,
                    current,
                    burn_short,
                    burn_long,
                    alert: burn_short >= self.alert_factor && burn_long >= self.alert_factor,
                }
            })
            .collect()
    }

    /// Deterministic text report (one line per spec plus a header).
    pub fn render_report(&self) -> String {
        let statuses = self.evaluate();
        let mut out = format!(
            "slo report: {} specs, {} samples, windows {}/{}, alert at {}x\n",
            self.specs.len(),
            self.samples(),
            self.short_window,
            self.long_window,
            fmt(self.alert_factor),
        );
        for s in statuses {
            out.push_str(&format!(
                "slo {}: current={} burn_short={} burn_long={} alert={}\n",
                s.name,
                fmt(s.current),
                fmt(s.burn_short),
                fmt(s.burn_long),
                if s.alert { "FIRING" } else { "ok" }
            ));
        }
        out
    }
}

/// Fixed-precision, locale-free float formatting for reports.
fn fmt(v: f64) -> String {
    if v.is_infinite() {
        "inf".to_string()
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ratio_engine(budget: f64) -> SloEngine {
        SloEngine::with_windows(
            vec![SloSpec {
                name: "test_ratio",
                kind: SloKind::BadRatioBelow {
                    bad: "t_bad_total".into(),
                    total: "t_all_total".into(),
                    budget,
                },
            }],
            2,
            4,
            2.0,
        )
    }

    #[test]
    fn burn_rate_tracks_window_deltas_and_alerts_on_both_windows() {
        let r = Registry::new();
        let bad = r.counter("t_bad_total");
        let all = r.counter("t_all_total");
        let engine = ratio_engine(0.1);

        // 4 clean rounds: 10 ops each, no bad.
        for _ in 0..4 {
            all.add(10);
            engine.record_sample(&r);
        }
        let s = &engine.evaluate()[0];
        assert_eq!(s.burn_short, 0.0);
        assert!(!s.alert);

        // Two rounds burning at 50% bad = 5x the 10% budget: short
        // window fires immediately, long window needs the sustained run.
        all.add(10);
        bad.add(5);
        engine.record_sample(&r);
        let s = &engine.evaluate()[0];
        assert!(s.burn_short > 2.0, "short burn {}", s.burn_short);
        assert!(!s.alert, "one bad round must not page (long window clean)");

        all.add(10);
        bad.add(5);
        engine.record_sample(&r);
        let s = &engine.evaluate()[0];
        assert!(s.burn_short >= 2.0 && s.burn_long >= 2.0);
        assert!(s.alert, "sustained burn must page");
    }

    #[test]
    fn quantile_spec_breach_fraction_drives_burn() {
        let r = Registry::new();
        let h = r.histogram("t_lat_ms");
        let engine = SloEngine::with_windows(
            vec![SloSpec {
                name: "p99",
                kind: SloKind::QuantileBelow {
                    metric: "t_lat_ms".into(),
                    q: 0.99,
                    bound: 100.0,
                    allowed: 0.5,
                },
            }],
            2,
            2,
            1.0,
        );
        h.observe(10.0);
        engine.record_sample(&r); // p99=10 <= 100: clean
        for _ in 0..200 {
            h.observe(500.0);
        }
        engine.record_sample(&r); // p99 now ~500: breach
        let s = &engine.evaluate()[0];
        assert!(s.current > 100.0);
        // 1 of 2 samples breached, allowed 0.5 -> burn exactly 1.0.
        assert!((s.burn_short - 1.0).abs() < 1e-12, "burn {}", s.burn_short);
        assert!(s.alert);
    }

    #[test]
    fn report_is_deterministic_text() {
        let r = Registry::new();
        r.counter("t_all_total").add(4);
        let engine = ratio_engine(0.25);
        engine.record_sample(&r);
        let a = engine.render_report();
        let b = engine.render_report();
        assert_eq!(a, b);
        assert!(a.starts_with("slo report: 1 specs, 1 samples"));
        assert!(a.contains("slo test_ratio: current=0.0000"));
    }

    #[test]
    fn empty_history_reports_cleanly() {
        let engine = ratio_engine(0.1);
        let s = &engine.evaluate()[0];
        assert_eq!(s.current, 0.0);
        assert!(!s.alert);
    }
}
