//! # bate-obs — observability substrate for the BATE workspace
//!
//! The bottom of the workspace dependency graph: every other crate can
//! (and most do) depend on this one, so it is deliberately std-only.
//! Three pieces:
//!
//! * [`clock`] — the `Clock` capability trait with real
//!   ([`SystemClock`]) and virtual ([`SimClock`]) implementations.
//!   Moved here from `bate-core` so telemetry timestamps share the
//!   components' time source; `bate_core::clock` re-exports it, so
//!   existing imports are unchanged.
//! * [`metrics`] — a lock-sharded registry of counters, gauges, and
//!   log-linear histograms with Prometheus text exposition
//!   ([`Registry::render_prometheus`]) and deterministic JSONL
//!   snapshots ([`Registry::snapshot_jsonl_filtered`]).
//! * [`trace`] — `event!`/`span!` structured tracing over a pluggable
//!   [`Subscriber`](trace::Subscriber), with ring-buffer (tests), JSONL
//!   (replayable captures, faultline-style), and stderr (CLIs)
//!   subscribers. Bitwise-deterministic under [`SimClock`] per the
//!   contract in the module docs.
//! * [`context`] — deterministic causal trace contexts
//!   (`trace_id`/`span_id`/`parent_span_id`, derived from request ids —
//!   never randomness), a thread-local span stack, explicit
//!   [`Handoff`](context::Handoff) for scoped-thread fan-outs, and
//!   remote adoption for contexts carried across the wire.
//! * [`flight`] — a bounded flight-recorder ring of recent events that
//!   dumps deterministic, causally-sliced JSONL artifacts on triggers
//!   (election loss, cert-gate cold fallback, storm latency breach).
//! * [`slo`] — declarative SLO specs (admission p99, warm-hit rate,
//!   BA-guarantee rate) evaluated over registry snapshots with
//!   multi-window burn-rate alerting.
//!
//! ## Quick use
//!
//! ```
//! use bate_obs as obs;
//! use std::sync::Arc;
//!
//! // Metrics: register once, record forever.
//! let solves = obs::metrics::Registry::global().counter("bate_solver_solves_total");
//! solves.inc();
//!
//! // Tracing: install a subscriber, emit structured events.
//! let ring = obs::trace::RingBufferSubscriber::new(64);
//! obs::trace::install(ring.clone(), obs::SimClock::shared());
//! obs::info!("sched.round", demands = 12usize);
//! obs::trace::uninstall();
//! assert_eq!(ring.events().len(), 1);
//! ```

pub mod clock;
pub mod context;
pub mod flight;
pub mod metrics;
pub mod slo;
pub mod trace;

pub use clock::{Clock, SimClock, SystemClock};
pub use context::{CtxGuard, Handoff, SpanCtx};
pub use flight::FlightDump;
pub use metrics::{Counter, Gauge, Histogram, MetricKind, Registry};
pub use slo::{SloEngine, SloKind, SloSpec, SloStatus};
pub use trace::{
    Event, JsonlSubscriber, Level, NoopSubscriber, RingBufferSubscriber, SpanGuard,
    StderrSubscriber, Subscriber, Value,
};
