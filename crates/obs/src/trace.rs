//! Span-based structured tracing: `event!`/`span!` macros over a
//! pluggable [`Subscriber`].
//!
//! ## Model
//!
//! An [`Event`] is a named point-in-time record with a global sequence
//! number, a timestamp from the *installed clock* (see [`install`]), a
//! level, the emitting module, and typed key/value fields. A span
//! ([`SpanGuard`], built by the `span!` macro) is a scoped region that
//! emits one close-event carrying its duration — cheap enough for
//! per-round instrumentation without enter/exit noise.
//!
//! ## Dispatch
//!
//! One process-global subscriber slot guarded by an `AtomicBool` fast
//! path: with nothing installed, `event!` costs one relaxed load and
//! never materializes its fields. [`install`] pairs the subscriber with
//! a [`Clock`] so timestamps come from the same time source as the code
//! under observation.
//!
//! ## Determinism contract
//!
//! Traces are bitwise-deterministic when three rules hold:
//! 1. events are emitted only from *sequential* code (never inside
//!    `par_map` regions — the parallel sections record to the metrics
//!    registry instead, whose atomic adds commute);
//! 2. event fields carry only deterministic values (counts, verdicts,
//!    virtual-time stamps — never wall-clock durations or addresses);
//! 3. the installed clock is a [`SimClock`](crate::clock::SimClock)
//!    driven by the event source.
//!
//! `scripts/obscheck.sh` enforces the contract end-to-end by diffing two
//! seeded sim runs captured through [`JsonlSubscriber`].

use crate::clock::Clock;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Event severity, least to most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Debug,
    Info,
    Warn,
    Error,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// A typed field value. `From` impls cover the workspace's common types
/// so `event!(…, key = expr)` needs no explicit wrapping.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::I64(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl Value {
    /// JSON rendering (non-finite floats become `null`).
    pub(crate) fn to_json(&self) -> String {
        match self {
            Value::U64(v) => format!("{v}"),
            Value::I64(v) => format!("{v}"),
            Value::F64(v) if v.is_finite() => format!("{v}"),
            Value::F64(_) => "null".to_string(),
            Value::Bool(v) => format!("{v}"),
            Value::Str(s) => json_string(s),
        }
    }

    /// Human rendering (for the stderr subscriber).
    fn to_display(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            other => other.to_json(),
        }
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One structured record delivered to the subscriber.
#[derive(Debug, Clone)]
pub struct Event {
    /// Global emission order (monotone per process).
    pub seq: u64,
    /// Timestamp from the installed clock, in nanoseconds since its epoch.
    pub t_ns: u64,
    pub level: Level,
    /// Emitting module (`module_path!()` of the macro call site).
    pub target: &'static str,
    pub name: &'static str,
    /// Causal identity stamped from the thread's current
    /// [`SpanCtx`](crate::context::SpanCtx) ([`SpanCtx::NONE`] when the
    /// event fired outside any traced scope).
    ///
    /// [`SpanCtx::NONE`]: crate::context::SpanCtx::NONE
    pub ctx: crate::context::SpanCtx,
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// One-line JSON with a fixed field order — the JSONL subscriber's
    /// wire format (and the thing obscheck diffs). Traced events carry
    /// `trace`/`span`/`parent` hex ids between `name` and `fields`;
    /// untraced events keep the exact pre-trace-context shape.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"seq\":{},\"t_ns\":{},\"level\":\"{}\",\"target\":\"{}\",\"name\":{}",
            self.seq,
            self.t_ns,
            self.level.as_str(),
            self.target,
            json_string(self.name),
        );
        if self.ctx.is_some() {
            out.push_str(&format!(
                ",\"trace\":\"{}\",\"span\":\"{}\",\"parent\":\"{}\"",
                crate::context::hex(self.ctx.trace_id),
                crate::context::hex(self.ctx.span_id),
                crate::context::hex(self.ctx.parent_span_id),
            ));
        }
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_string(k), v.to_json()));
        }
        out.push_str("}}");
        out
    }
}

/// Receives every event emitted while installed.
pub trait Subscriber: Send + Sync {
    fn event(&self, event: &Event);
    fn flush(&self) {}
}

struct Dispatch {
    subscriber: Arc<dyn Subscriber>,
    clock: Arc<dyn Clock>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);

fn dispatch_slot() -> &'static RwLock<Option<Dispatch>> {
    static SLOT: std::sync::OnceLock<RwLock<Option<Dispatch>>> = std::sync::OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Install the process-global subscriber and the clock that stamps its
/// events. Replaces any previous subscriber; resets the sequence counter
/// so a fresh install starts a fresh deterministic stream.
pub fn install(subscriber: Arc<dyn Subscriber>, clock: Arc<dyn Clock>) {
    let mut slot = dispatch_slot().write().unwrap();
    *slot = Some(Dispatch { subscriber, clock });
    SEQ.store(0, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Remove the installed subscriber (flushing it first).
pub fn uninstall() {
    let mut slot = dispatch_slot().write().unwrap();
    if let Some(d) = slot.take() {
        d.subscriber.flush();
    }
    ENABLED.store(false, Ordering::SeqCst);
}

/// Fast-path check the macros use to skip field materialization.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Emit an event through the installed subscriber (no-op when none).
/// Callers normally go through the `event!` / level macros. The event is
/// stamped with the thread's current span context and teed into the
/// flight-recorder ring when one is enabled.
pub fn emit(level: Level, target: &'static str, name: &'static str, fields: Vec<(&'static str, Value)>) {
    emit_with_ctx(level, target, name, crate::context::current(), fields)
}

/// [`emit`] with an explicit context (used by span close-events, which
/// must carry the span's own identity after it left the stack).
pub fn emit_with_ctx(
    level: Level,
    target: &'static str,
    name: &'static str,
    ctx: crate::context::SpanCtx,
    fields: Vec<(&'static str, Value)>,
) {
    let slot = dispatch_slot().read().unwrap();
    if let Some(d) = slot.as_ref() {
        let event = Event {
            seq: SEQ.fetch_add(1, Ordering::SeqCst),
            t_ns: d.clock.now().as_nanos().min(u64::MAX as u128) as u64,
            level,
            target,
            name,
            ctx,
            fields,
        };
        crate::flight::record(&event);
        d.subscriber.event(&event);
    }
}

/// `now()` of the installed clock (None with nothing installed).
pub fn clock_now() -> Option<Duration> {
    let slot = dispatch_slot().read().unwrap();
    slot.as_ref().map(|d| d.clock.now())
}

/// A scoped region that emits one close-event with its duration (in the
/// installed clock's time) when dropped. Built by the `span!` macro;
/// inert when no subscriber is installed at entry.
///
/// Inside an active trace (see [`crate::context`]) the span derives a
/// deterministic child context, holds it on the thread's stack for its
/// scope — so nested spans and events parent on it — and stamps the
/// close-event with its own identity.
pub struct SpanGuard {
    name: &'static str,
    target: &'static str,
    start: Option<Duration>,
    ctx: crate::context::SpanCtx,
    entered: Option<crate::context::CtxGuard>,
    fields: Vec<(&'static str, Value)>,
}

impl SpanGuard {
    pub fn begin(
        name: &'static str,
        target: &'static str,
        fields: Vec<(&'static str, Value)>,
    ) -> SpanGuard {
        let active = enabled();
        let ctx = if active {
            crate::context::next_child(name).unwrap_or(crate::context::SpanCtx::NONE)
        } else {
            crate::context::SpanCtx::NONE
        };
        SpanGuard {
            name,
            target,
            start: if active { clock_now() } else { None },
            ctx,
            entered: if ctx.is_some() {
                Some(crate::context::enter(ctx))
            } else {
                None
            },
            fields,
        }
    }

    /// The span's causal identity (NONE outside a trace).
    pub fn ctx(&self) -> crate::context::SpanCtx {
        self.ctx
    }

    /// Attach a field after entry (recorded on the close-event).
    pub fn record(&mut self, key: &'static str, value: impl Into<Value>) {
        if self.start.is_some() {
            self.fields.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        // Leave the context stack before emitting so the close-event's
        // explicit ctx is the span's own, not a self-parented child.
        self.entered.take();
        if let (Some(start), true) = (self.start, enabled()) {
            let dur_ns = clock_now()
                .unwrap_or(start)
                .saturating_sub(start)
                .as_nanos()
                .min(u64::MAX as u128) as u64;
            let mut fields = std::mem::take(&mut self.fields);
            fields.push(("dur_ns", Value::U64(dur_ns)));
            emit_with_ctx(Level::Debug, self.target, self.name, self.ctx, fields);
        }
    }
}

/// Emit a structured event: `event!(Level::Info, "name", key = value, …)`.
#[macro_export]
macro_rules! event {
    ($level:expr, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::trace::enabled() {
            $crate::trace::emit(
                $level,
                module_path!(),
                $name,
                vec![$((stringify!($key), $crate::trace::Value::from($val))),*],
            );
        }
    };
}

/// `event!` at `Level::Debug`.
#[macro_export]
macro_rules! debug {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        $crate::event!($crate::trace::Level::Debug, $name $(, $key = $val)*)
    };
}

/// `event!` at `Level::Info`.
#[macro_export]
macro_rules! info {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        $crate::event!($crate::trace::Level::Info, $name $(, $key = $val)*)
    };
}

/// `event!` at `Level::Warn`.
#[macro_export]
macro_rules! warn {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        $crate::event!($crate::trace::Level::Warn, $name $(, $key = $val)*)
    };
}

/// `event!` at `Level::Error`.
#[macro_export]
macro_rules! error {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        $crate::event!($crate::trace::Level::Error, $name $(, $key = $val)*)
    };
}

/// Open a span: `let _s = span!("name", key = value, …);` — the
/// close-event (with `dur_ns`) fires when the guard drops.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        $crate::trace::SpanGuard::begin(
            $name,
            module_path!(),
            if $crate::trace::enabled() {
                vec![$((stringify!($key), $crate::trace::Value::from($val))),*]
            } else {
                Vec::new()
            },
        )
    };
}

/// Bounded in-memory subscriber for tests: keeps the most recent
/// `capacity` events.
pub struct RingBufferSubscriber {
    capacity: usize,
    events: Mutex<VecDeque<Event>>,
}

impl RingBufferSubscriber {
    pub fn new(capacity: usize) -> Arc<RingBufferSubscriber> {
        Arc::new(RingBufferSubscriber {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
        })
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().iter().cloned().collect()
    }

    /// Drain the buffer.
    pub fn take(&self) -> Vec<Event> {
        self.events.lock().unwrap().drain(..).collect()
    }
}

impl Subscriber for RingBufferSubscriber {
    fn event(&self, event: &Event) {
        let mut q = self.events.lock().unwrap();
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(event.clone());
    }
}

/// Writes one JSON object per event — the same header-line + record-lines
/// JSONL shape as faultline's replayable traces, so the two streams can
/// be diffed and archived with the same tooling.
pub struct JsonlSubscriber {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSubscriber {
    /// Wrap a writer, emitting a `{"trace":"<label>"}` header line first
    /// (faultline's trace format leads with `{"plan":"…"}` the same way).
    pub fn new(mut out: Box<dyn Write + Send>, label: &str) -> std::io::Result<Arc<JsonlSubscriber>> {
        writeln!(out, "{{\"trace\":{}}}", json_string(label))?;
        Ok(Arc::new(JsonlSubscriber {
            out: Mutex::new(out),
        }))
    }

    /// Create (truncate) `path` and write the trace there.
    pub fn to_file(path: &std::path::Path, label: &str) -> std::io::Result<Arc<JsonlSubscriber>> {
        let f = std::fs::File::create(path)?;
        JsonlSubscriber::new(Box::new(std::io::BufWriter::new(f)), label)
    }
}

impl Subscriber for JsonlSubscriber {
    fn event(&self, event: &Event) {
        let mut out = self.out.lock().unwrap();
        let _ = writeln!(out, "{}", event.to_json());
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap().flush();
    }
}

/// Human-oriented stderr subscriber for CLI tools: prints
/// `level: <msg>` (the `msg` field if present, else the event name)
/// followed by the remaining fields as `(k=v, …)`. Only events at or
/// above `min_level` are printed.
pub struct StderrSubscriber {
    min_level: Level,
}

impl StderrSubscriber {
    pub fn new(min_level: Level) -> Arc<StderrSubscriber> {
        Arc::new(StderrSubscriber { min_level })
    }
}

impl Subscriber for StderrSubscriber {
    fn event(&self, event: &Event) {
        if event.level < self.min_level {
            return;
        }
        let msg = event
            .fields
            .iter()
            .find(|(k, _)| *k == "msg")
            .map(|(_, v)| v.to_display())
            .unwrap_or_else(|| event.name.to_string());
        let rest: Vec<String> = event
            .fields
            .iter()
            .filter(|(k, _)| *k != "msg")
            .map(|(k, v)| format!("{k}={}", v.to_display()))
            .collect();
        if rest.is_empty() {
            eprintln!("{}: {}", event.level.as_str(), msg);
        } else {
            eprintln!("{}: {} ({})", event.level.as_str(), msg, rest.join(", "));
        }
    }
}

/// Drops everything (useful as an explicit "telemetry enabled but
/// discarded" baseline in benchmarks).
pub struct NoopSubscriber;

impl NoopSubscriber {
    pub fn new() -> Arc<NoopSubscriber> {
        Arc::new(NoopSubscriber)
    }
}

impl Subscriber for NoopSubscriber {
    fn event(&self, _event: &Event) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;

    // The dispatch slot is process-global; tests that install must not
    // interleave.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn events_flow_to_ring_buffer_with_sim_timestamps() {
        let _guard = serial();
        let clock = SimClock::shared();
        let ring = RingBufferSubscriber::new(8);
        install(ring.clone(), clock.clone());

        crate::info!("test.start", n = 3usize);
        clock.advance(Duration::from_millis(5));
        crate::warn!("test.retry", attempt = 2u64, wait_ms = 1.5f64);
        uninstall();
        crate::info!("test.after_uninstall"); // must be dropped

        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "test.start");
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].t_ns, 0);
        assert_eq!(events[0].fields, vec![("n", Value::U64(3))]);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[1].t_ns, 5_000_000);
        assert_eq!(events[1].level, Level::Warn);
    }

    #[test]
    fn span_close_carries_virtual_duration() {
        let _guard = serial();
        let clock = SimClock::shared();
        let ring = RingBufferSubscriber::new(8);
        install(ring.clone(), clock.clone());
        {
            let mut s = crate::span!("test.span", items = 4usize);
            clock.advance(Duration::from_micros(250));
            s.record("outcome", "ok");
        }
        uninstall();
        let events = ring.take();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.name, "test.span");
        assert!(e.fields.contains(&("items", Value::U64(4))));
        assert!(e.fields.contains(&("outcome", Value::Str("ok".into()))));
        assert!(e.fields.contains(&("dur_ns", Value::U64(250_000))));
    }

    #[test]
    fn ring_buffer_is_bounded() {
        let ring = RingBufferSubscriber::new(2);
        for i in 0..5u64 {
            ring.event(&Event {
                seq: i,
                t_ns: 0,
                level: Level::Info,
                target: "t",
                name: "e",
                ctx: crate::context::SpanCtx::NONE,
                fields: vec![],
            });
        }
        let seqs: Vec<u64> = ring.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn jsonl_format_is_fixed_order_and_escaped() {
        let mut e = Event {
            seq: 7,
            t_ns: 1500,
            level: Level::Error,
            target: "bate_obs::trace::tests",
            name: "io.fail",
            ctx: crate::context::SpanCtx::NONE,
            fields: vec![
                ("msg", Value::Str("bad \"path\"\n".into())),
                ("code", Value::I64(-2)),
                ("ratio", Value::F64(0.5)),
                ("nan", Value::F64(f64::NAN)),
            ],
        };
        // Untraced events keep the exact pre-trace-context shape.
        assert_eq!(
            e.to_json(),
            "{\"seq\":7,\"t_ns\":1500,\"level\":\"error\",\"target\":\"bate_obs::trace::tests\",\"name\":\"io.fail\",\"fields\":{\"msg\":\"bad \\\"path\\\"\\n\",\"code\":-2,\"ratio\":0.5,\"nan\":null}}"
        );
        // Traced events add trace/span/parent between name and fields.
        e.ctx = crate::context::SpanCtx {
            trace_id: 0xA,
            span_id: 0xB,
            parent_span_id: 0,
        };
        e.fields.clear();
        assert_eq!(
            e.to_json(),
            "{\"seq\":7,\"t_ns\":1500,\"level\":\"error\",\"target\":\"bate_obs::trace::tests\",\"name\":\"io.fail\",\"trace\":\"000000000000000a\",\"span\":\"000000000000000b\",\"parent\":\"0000000000000000\",\"fields\":{}}"
        );
    }

    #[test]
    fn spans_and_events_carry_nested_contexts() {
        let _guard = serial();
        let ring = RingBufferSubscriber::new(16);
        install(ring.clone(), SimClock::shared());
        {
            let root = crate::context::root("submit", 42);
            let outer = crate::span!("ctrl.admit");
            crate::info!("admission.verdict", admitted = true);
            let outer_ctx = outer.ctx();
            drop(outer);
            assert!(outer_ctx.is_some());
            assert_eq!(outer_ctx.parent_span_id, root.ctx.span_id);
        }
        crate::info!("untraced.after");
        uninstall();
        let events = ring.take();
        assert_eq!(events.len(), 3);
        let verdict = &events[0];
        let close = &events[1];
        assert_eq!(verdict.name, "admission.verdict");
        assert_eq!(close.name, "ctrl.admit");
        // The event carries the enclosing span's identity; the
        // close-event IS the span, so the two stamps coincide.
        assert_eq!(verdict.ctx, close.ctx);
        assert!(!events[2].ctx.is_some());
    }

    #[test]
    fn jsonl_subscriber_writes_header_then_records() {
        let _guard = serial();
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sub = JsonlSubscriber::new(Box::new(Shared(buf.clone())), "unit").unwrap();
        install(sub, SimClock::shared());
        crate::info!("one", k = 1u64);
        uninstall();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "{\"trace\":\"unit\"}");
        assert!(lines[1].starts_with("{\"seq\":0,"));
        assert!(lines[1].contains("\"name\":\"one\""));
    }
}
