//! Deterministic causal trace contexts: `trace_id`/`span_id`/
//! `parent_span_id` identity for spans and events, carried on a
//! thread-local stack and across threads/processes by explicit handoff.
//!
//! ## Identity derivation
//!
//! Ids are **derived, never drawn**: a root trace id is an FNV-1a hash of
//! a `(kind, request id)` pair, and every child span id is an FNV-1a hash
//! of `(parent span id, child index, span name)`, where the child index
//! is the parent's running child counter. Two same-seed runs therefore
//! produce byte-identical ids — the property `scripts/obscheck.sh` diffs
//! for — and an idempotent retry of the same request reproduces the same
//! subtree rather than minting fresh ids.
//!
//! ## Propagation
//!
//! * **Same thread:** [`SpanGuard`](crate::trace::SpanGuard) (the `span!`
//!   macro) derives a child of the current top-of-stack context and
//!   pushes it for its scope; `event!` stamps the current context onto
//!   every event.
//! * **Across scoped threads:** [`fan_out`] pre-derives one child context
//!   per worker slot *on the parent thread* (so ids depend on slot index,
//!   not scheduling) and each worker enters its [`Handoff`] explicitly.
//! * **Across processes:** the wire framing carries `(trace_id, span_id)`
//!   (see `bate-system`'s `wire` module); the receiver calls [`adopt`] to
//!   parent its local spans on the sender's span.
//!
//! With no context on the stack, spans and events carry id 0 ("untraced")
//! and behave exactly as before this layer existed — in particular the
//! parallel solver fan-outs emit nothing unless a handoff was entered.

use std::cell::RefCell;

/// The causal identity of a span: which trace it belongs to, its own id,
/// and its parent's id (0 = root / none).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanCtx {
    pub trace_id: u64,
    pub span_id: u64,
    pub parent_span_id: u64,
}

impl SpanCtx {
    /// The absent context (all ids 0) — what untraced events carry.
    pub const NONE: SpanCtx = SpanCtx {
        trace_id: 0,
        span_id: 0,
        parent_span_id: 0,
    };

    pub fn is_some(&self) -> bool {
        self.trace_id != 0
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hash to a non-zero id (0 is reserved for "absent").
fn nonzero(h: u64) -> u64 {
    if h == 0 {
        0x6261_7465_0b5e_1d01 // "bate" | arbitrary fixed odd tail
    } else {
        h
    }
}

/// Deterministic trace id for a `(kind, id)` request: e.g.
/// `("submit", demand_id)` for an admission flow.
pub fn trace_id(kind: &str, id: u64) -> u64 {
    let h = fnv_bytes(FNV_OFFSET, kind.as_bytes());
    nonzero(fnv_bytes(h, &id.to_be_bytes()))
}

/// Deterministic span id: child `index` of span `parent` named `name`.
pub fn span_id(parent: u64, index: u64, name: &str) -> u64 {
    let h = fnv_bytes(FNV_OFFSET, &parent.to_be_bytes());
    let h = fnv_bytes(h, &index.to_be_bytes());
    nonzero(fnv_bytes(h, name.as_bytes()))
}

struct ActiveSpan {
    ctx: SpanCtx,
    /// Running child counter — the `index` input of the next child's id.
    children: u64,
}

thread_local! {
    static STACK: RefCell<Vec<ActiveSpan>> = const { RefCell::new(Vec::new()) };
}

/// The context of the innermost active span on this thread
/// ([`SpanCtx::NONE`] outside any traced scope).
pub fn current() -> SpanCtx {
    STACK.with(|s| s.borrow().last().map(|a| a.ctx).unwrap_or(SpanCtx::NONE))
}

fn push(ctx: SpanCtx) {
    STACK.with(|s| s.borrow_mut().push(ActiveSpan { ctx, children: 0 }));
}

fn pop() {
    STACK.with(|s| {
        s.borrow_mut().pop();
    });
}

/// Derive (and count) the next child of the current span; `None` when no
/// trace is active. Used by `SpanGuard` so nesting order is the only
/// input to the id.
pub(crate) fn next_child(name: &str) -> Option<SpanCtx> {
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let top = stack.last_mut()?;
        let idx = top.children;
        top.children += 1;
        Some(SpanCtx {
            trace_id: top.ctx.trace_id,
            span_id: span_id(top.ctx.span_id, idx, name),
            parent_span_id: top.ctx.span_id,
        })
    })
}

/// Scope guard that holds a context on this thread's stack; popping on
/// drop. Constructed by [`root`], [`adopt`], and [`Handoff::enter`].
pub struct CtxGuard {
    /// The context this guard pushed (for callers that need to put it on
    /// the wire or into an artifact).
    pub ctx: SpanCtx,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        pop();
    }
}

/// Start a new root trace for request `(kind, id)` and make it current.
/// The root span's id is child 0 of the trace id itself.
pub fn root(kind: &'static str, id: u64) -> CtxGuard {
    let tid = trace_id(kind, id);
    let ctx = SpanCtx {
        trace_id: tid,
        span_id: span_id(tid, 0, kind),
        parent_span_id: 0,
    };
    push(ctx);
    CtxGuard { ctx }
}

/// Adopt a context received from a remote peer: open a local span named
/// `name` parented on the sender's span. Identity is a pure function of
/// the received ids and the name, so retries of the same request
/// reproduce the same local subtree.
pub fn adopt(name: &'static str, trace_id: u64, remote_span_id: u64) -> CtxGuard {
    let ctx = SpanCtx {
        trace_id,
        span_id: span_id(remote_span_id, 0, name),
        parent_span_id: remote_span_id,
    };
    push(ctx);
    CtxGuard { ctx }
}

/// Re-enter an explicit context (e.g. one captured before a queue hop or
/// replayed from a flight-recorder artifact).
pub fn enter(ctx: SpanCtx) -> CtxGuard {
    push(ctx);
    CtxGuard { ctx }
}

/// A pre-derived child context for one worker slot of a scoped-thread
/// fan-out. Derived on the *parent* thread so the id depends only on the
/// slot index, never on worker scheduling.
#[derive(Debug, Clone, Copy)]
pub struct Handoff {
    ctx: SpanCtx,
}

impl Handoff {
    /// Enter the handed-off context on the current (worker) thread.
    /// Returns `None` when the fan-out happened outside any trace — the
    /// worker then emits nothing, preserving the determinism contract
    /// for untraced parallel regions.
    pub fn enter(&self) -> Option<CtxGuard> {
        if self.ctx.is_some() {
            push(self.ctx);
            Some(CtxGuard { ctx: self.ctx })
        } else {
            None
        }
    }

    /// The handed-off context (NONE outside a trace).
    pub fn ctx(&self) -> SpanCtx {
        self.ctx
    }
}

/// Derive `n` sibling child contexts of the current span, one per worker
/// slot, named `name`. Must be called on the thread that owns the parent
/// span, *before* spawning workers.
pub fn fan_out(n: usize, name: &'static str) -> Vec<Handoff> {
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        match stack.last_mut() {
            Some(top) => (0..n)
                .map(|_| {
                    let idx = top.children;
                    top.children += 1;
                    Handoff {
                        ctx: SpanCtx {
                            trace_id: top.ctx.trace_id,
                            span_id: span_id(top.ctx.span_id, idx, name),
                            parent_span_id: top.ctx.span_id,
                        },
                    }
                })
                .collect(),
            None => vec![Handoff { ctx: SpanCtx::NONE }; n],
        }
    })
}

/// Render an id as the fixed-width hex used in artifacts (16 lowercase
/// hex digits; id 0 renders as all zeros but is never emitted).
pub fn hex(id: u64) -> String {
    format!("{id:016x}")
}

/// Parse an id from [`hex`] form (also accepts decimal for CLI
/// convenience).
pub fn parse_id(s: &str) -> Option<u64> {
    let t = s.trim();
    if let Ok(v) = u64::from_str_radix(t, 16) {
        return Some(v);
    }
    t.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_deterministic_and_nonzero() {
        assert_eq!(trace_id("submit", 42), trace_id("submit", 42));
        assert_ne!(trace_id("submit", 42), trace_id("submit", 43));
        assert_ne!(trace_id("submit", 42), trace_id("withdraw", 42));
        assert_ne!(trace_id("submit", 42), 0);
        assert_eq!(span_id(7, 0, "a"), span_id(7, 0, "a"));
        assert_ne!(span_id(7, 0, "a"), span_id(7, 1, "a"));
        assert_ne!(span_id(7, 0, "a"), span_id(8, 0, "a"));
    }

    #[test]
    fn stack_nests_and_children_count() {
        assert!(!current().is_some());
        let g = root("submit", 1);
        assert_eq!(current(), g.ctx);
        let c1 = next_child("inner").unwrap();
        let c2 = next_child("inner").unwrap();
        assert_ne!(c1.span_id, c2.span_id);
        assert_eq!(c1.parent_span_id, g.ctx.span_id);
        drop(g);
        assert!(!current().is_some());
        assert!(next_child("x").is_none());
    }

    #[test]
    fn fan_out_derives_slot_stable_ids() {
        let g = root("sweep", 9);
        let hs = fan_out(3, "worker");
        let ids: Vec<u64> = hs.iter().map(|h| h.ctx().span_id).collect();
        assert_eq!(ids.len(), 3);
        assert!(ids.iter().all(|&i| i != 0));
        assert!(hs.iter().all(|h| h.ctx().parent_span_id == g.ctx.span_id));
        // Same derivation again yields the *next* indices, not the same.
        let hs2 = fan_out(3, "worker");
        assert!(hs2.iter().zip(&hs).all(|(a, b)| a.ctx().span_id != b.ctx().span_id));
        drop(g);
        // Outside a trace the handoffs are inert.
        let none = fan_out(2, "worker");
        assert!(none.iter().all(|h| h.enter().is_none()));
    }

    #[test]
    fn adopt_parents_on_remote_span() {
        let g = adopt("ctrl.submit", 0xABCD, 0x1234);
        assert_eq!(g.ctx.trace_id, 0xABCD);
        assert_eq!(g.ctx.parent_span_id, 0x1234);
        assert_eq!(g.ctx.span_id, span_id(0x1234, 0, "ctrl.submit"));
    }

    #[test]
    fn hex_roundtrip() {
        let id = trace_id("submit", 7);
        assert_eq!(parse_id(&hex(id)), Some(id));
        assert_eq!(parse_id("42"), Some(0x42)); // hex wins when ambiguous
        assert_eq!(parse_id("zz"), None);
    }
}
