//! Flight recorder: a bounded ring of recent events that dumps a
//! deterministic, causally-sliced JSONL artifact when a trigger fires.
//!
//! ## Model
//!
//! When enabled, every event that reaches the dispatch layer is teed
//! into a global bounded ring (`enable(capacity)`); the installed
//! subscriber is unaffected. A *trigger* — election loss, cert-gate cold
//! fallback, a storm round breaching its latency bound — calls
//! [`trigger`] with the trace id of the flow that tripped it. The
//! recorder snapshots the ring, extracts the **causal slice** (every
//! buffered event of that trace, re-ordered into canonical causal order
//! and renumbered), and dumps it as a JSONL artifact: to
//! `flight_<n>_<reason>.jsonl` under the configured dump directory, and
//! always to an in-memory list tests and tools can drain with
//! [`take_dumps`].
//!
//! ## Determinism
//!
//! Ring *arrival* order is racy when events come from concurrent
//! connection threads, so dumps never use it: [`causal_slice`] orders
//! spans by their deterministic ids (children sorted by `span_id`) and a
//! span's own events by relative sequence (same-thread order, which the
//! monotone global counter preserves), then renumbers `seq` from 0.
//! Artifacts are therefore byte-identical across same-seed runs even
//! when the recording interleaving was not.

use crate::context::hex;
use crate::trace::Event;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// One dumped artifact: the trigger's reason, the sliced trace, and the
/// canonically ordered events.
#[derive(Debug, Clone)]
pub struct FlightDump {
    pub reason: &'static str,
    pub trace_id: u64,
    /// Causal slice, canonical order, `seq` renumbered from 0.
    pub events: Vec<Event>,
}

impl FlightDump {
    /// The artifact text: a header line then one JSON object per event.
    pub fn render_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"flight\":\"{}\",\"trace\":\"{}\",\"events\":{}}}\n",
            self.reason,
            hex(self.trace_id),
            self.events.len()
        );
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

struct FlightState {
    ring: VecDeque<Event>,
    capacity: usize,
    dump_dir: Option<std::path::PathBuf>,
    dumps: Vec<FlightDump>,
    dump_seq: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn state() -> &'static Mutex<FlightState> {
    static S: OnceLock<Mutex<FlightState>> = OnceLock::new();
    S.get_or_init(|| {
        Mutex::new(FlightState {
            ring: VecDeque::new(),
            capacity: 0,
            dump_dir: None,
            dumps: Vec::new(),
            dump_seq: 0,
        })
    })
}

/// Start recording the most recent `capacity` events (clears any prior
/// ring and pending dumps).
pub fn enable(capacity: usize) {
    let mut s = state().lock().unwrap();
    s.ring.clear();
    s.dumps.clear();
    s.dump_seq = 0;
    s.capacity = capacity.max(1);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stop recording and drop the ring (pending dumps stay drainable).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
    state().lock().unwrap().ring.clear();
}

/// Where triggered artifacts are written (`None` keeps them in memory
/// only).
pub fn set_dump_dir(dir: Option<std::path::PathBuf>) {
    state().lock().unwrap().dump_dir = dir;
}

/// Tee an event into the ring (called by the trace dispatch layer; cheap
/// no-op unless [`enable`]d).
#[inline]
pub(crate) fn record(event: &Event) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let mut s = state().lock().unwrap();
    if s.ring.len() == s.capacity {
        s.ring.pop_front();
    }
    s.ring.push_back(event.clone());
}

/// Fire a trigger: slice the ring causally on `trace_id` (0 slices
/// nothing out — the whole ring is dumped in canonical per-trace order),
/// record the dump, and write the artifact when a dump directory is set.
/// Returns `None` when the recorder is disabled.
pub fn trigger(reason: &'static str, trace_id: u64) -> Option<FlightDump> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    let mut s = state().lock().unwrap();
    let buffered: Vec<Event> = s.ring.iter().cloned().collect();
    let events = causal_slice(&buffered, trace_id);
    let dump = FlightDump {
        reason,
        trace_id,
        events,
    };
    if let Some(dir) = s.dump_dir.clone() {
        let path = dir.join(format!("flight_{:04}_{reason}.jsonl", s.dump_seq));
        let _ = std::fs::write(path, dump.render_jsonl());
    }
    s.dump_seq += 1;
    s.dumps.push(dump.clone());
    // Bound the in-memory list: a trigger storm must not grow unbounded.
    if s.dumps.len() > 64 {
        s.dumps.remove(0);
    }
    Some(dump)
}

/// Drain the in-memory dump list (oldest first).
pub fn take_dumps() -> Vec<FlightDump> {
    std::mem::take(&mut state().lock().unwrap().dumps)
}

/// Snapshot of the ring (test/diagnostic use).
pub fn ring_events() -> Vec<Event> {
    state().lock().unwrap().ring.iter().cloned().collect()
}

/// Canonical causal ordering of one trace's events.
///
/// Nodes are span ids; an event belongs to the node it is stamped with.
/// Roots are spans whose parent is 0 or absent from the slice (the trace
/// may continue from a remote parent the ring never saw). Traversal is
/// depth-first: a node's own events in relative-sequence order, then its
/// child spans in ascending span-id order. `seq` is renumbered from 0,
/// and `t_ns` is preserved (constant under a pinned `SimClock`).
/// `trace_id == 0` slices every trace, each rendered in trace-id order.
pub fn causal_slice(events: &[Event], trace_id: u64) -> Vec<Event> {
    let traces: BTreeSet<u64> = if trace_id != 0 {
        [trace_id].into()
    } else {
        events
            .iter()
            .filter(|e| e.ctx.is_some())
            .map(|e| e.ctx.trace_id)
            .collect()
    };
    let mut out = Vec::new();
    for tid in traces {
        let mut slice: Vec<&Event> = events
            .iter()
            .filter(|e| e.ctx.trace_id == tid)
            .collect();
        slice.sort_by_key(|e| e.seq);
        // span id -> (parent, events in seq order)
        let mut nodes: BTreeMap<u64, (u64, Vec<&Event>)> = BTreeMap::new();
        for e in &slice {
            let node = nodes
                .entry(e.ctx.span_id)
                .or_insert((e.ctx.parent_span_id, Vec::new()));
            node.1.push(e);
        }
        let mut children: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        let mut roots: Vec<u64> = Vec::new();
        for (&span, &(parent, _)) in &nodes {
            if parent != 0 && nodes.contains_key(&parent) {
                children.entry(parent).or_default().push(span);
            } else {
                roots.push(span);
            }
        }
        // Iterative DFS (children pre-sorted by BTreeMap id order).
        let mut stack: Vec<u64> = roots.into_iter().rev().collect();
        let mut visited: BTreeSet<u64> = BTreeSet::new();
        while let Some(span) = stack.pop() {
            if !visited.insert(span) {
                continue; // cycle guard: ids are hashes, collisions clamp
            }
            if let Some((_, evs)) = nodes.get(&span) {
                out.extend(evs.iter().map(|e| (*e).clone()));
            }
            if let Some(kids) = children.get(&span) {
                for &k in kids.iter().rev() {
                    stack.push(k);
                }
            }
        }
    }
    for (i, e) in out.iter_mut().enumerate() {
        e.seq = i as u64;
    }
    out
}

/// Structural well-formedness of a set of traced events: every traced
/// event's parent span must exist in the set (or be 0/remote-rooted at a
/// span that is itself present as a parent link), and parent links must
/// be acyclic. Returns a description of the first violation.
pub fn validate_tree(events: &[Event]) -> Result<(), String> {
    let spans: BTreeSet<u64> = events
        .iter()
        .filter(|e| e.ctx.is_some())
        .map(|e| e.ctx.span_id)
        .collect();
    let mut parent_of: BTreeMap<u64, u64> = BTreeMap::new();
    for e in events.iter().filter(|e| e.ctx.is_some()) {
        if let Some(&p) = parent_of.get(&e.ctx.span_id) {
            if p != e.ctx.parent_span_id {
                return Err(format!(
                    "span {} has two parents: {} and {}",
                    hex(e.ctx.span_id),
                    hex(p),
                    hex(e.ctx.parent_span_id)
                ));
            }
        } else {
            parent_of.insert(e.ctx.span_id, e.ctx.parent_span_id);
        }
    }
    for (&span, &parent) in &parent_of {
        // Walk to a root, bounded by the span population (cycle check).
        let mut cur = parent;
        let mut steps = 0usize;
        while cur != 0 {
            if cur == span {
                return Err(format!("cycle through span {}", hex(span)));
            }
            if !spans.contains(&cur) {
                break; // remote root: parent lived in another process
            }
            cur = *parent_of.get(&cur).unwrap_or(&0);
            steps += 1;
            if steps > spans.len() {
                return Err(format!("unterminated parent chain at {}", hex(span)));
            }
        }
    }
    Ok(())
}

/// Human-oriented causal tree of one trace (the `batectl trace`
/// rendering): indentation per depth, span close-events as nodes, plain
/// events as leaves.
pub fn render_tree(events: &[Event], trace_id: u64) -> String {
    let slice = causal_slice(events, trace_id);
    if slice.is_empty() {
        return format!("trace {}: no buffered events\n", hex(trace_id));
    }
    let mut out = format!("trace {} ({} events)\n", hex(trace_id), slice.len());
    // Depth = distance to a root via parent links present in the slice.
    let parents: BTreeMap<u64, u64> = slice
        .iter()
        .map(|e| (e.ctx.span_id, e.ctx.parent_span_id))
        .collect();
    for e in &slice {
        let mut depth = 0usize;
        let mut cur = e.ctx.parent_span_id;
        while cur != 0 {
            match parents.get(&cur) {
                Some(&p) if depth < 64 => {
                    depth += 1;
                    cur = p;
                }
                _ => break,
            }
        }
        let fields: Vec<String> = e
            .fields
            .iter()
            .map(|(k, v)| format!("{k}={}", v.to_json()))
            .collect();
        out.push_str(&format!(
            "{}{} [span {}] {}\n",
            "  ".repeat(depth + 1),
            e.name,
            hex(e.ctx.span_id),
            fields.join(" ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SpanCtx;
    use crate::trace::{Level, Value};

    fn ev(seq: u64, name: &'static str, trace: u64, span: u64, parent: u64) -> Event {
        Event {
            seq,
            t_ns: 0,
            level: Level::Info,
            target: "t",
            name,
            ctx: SpanCtx {
                trace_id: trace,
                span_id: span,
                parent_span_id: parent,
            },
            fields: vec![("k", Value::U64(seq))],
        }
    }

    #[test]
    fn causal_slice_orders_by_tree_not_arrival() {
        // Arrival order interleaves two subtrees; canonical order groups
        // by span id under the shared root.
        let events = vec![
            ev(0, "root", 1, 10, 0),
            ev(1, "b.work", 1, 30, 10),
            ev(2, "a.work", 1, 20, 10),
            ev(3, "a.close", 1, 20, 10),
        ];
        let slice = causal_slice(&events, 1);
        let names: Vec<&str> = slice.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["root", "a.work", "a.close", "b.work"]);
        let seqs: Vec<u64> = slice.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3], "seq renumbered canonically");
        // Other traces are excluded.
        let other = causal_slice(&events, 999);
        assert!(other.is_empty());
    }

    #[test]
    fn validate_tree_catches_orphans_and_cycles() {
        let ok = vec![ev(0, "r", 1, 10, 0), ev(1, "c", 1, 20, 10)];
        assert!(validate_tree(&ok).is_ok());
        // A cycle: 10 -> 20 -> 10.
        let cyc = vec![ev(0, "a", 1, 10, 20), ev(1, "b", 1, 20, 10)];
        assert!(validate_tree(&cyc).is_err());
        // Two parents for one span id.
        let dual = vec![ev(0, "a", 1, 10, 0), ev(1, "a", 1, 10, 99)];
        assert!(validate_tree(&dual).is_err());
    }

    #[test]
    fn trigger_dumps_causal_slice_of_matching_trace() {
        enable(16);
        set_dump_dir(None);
        for e in [
            ev(0, "keep.root", 7, 10, 0),
            ev(1, "drop.other", 8, 50, 0),
            ev(2, "keep.child", 7, 20, 10),
        ] {
            record(&e);
        }
        let dump = trigger("unit_test", 7).expect("recorder enabled");
        assert_eq!(dump.events.len(), 2);
        assert!(dump.events.iter().all(|e| e.ctx.trace_id == 7));
        let text = dump.render_jsonl();
        assert!(text.starts_with("{\"flight\":\"unit_test\",\"trace\":\"0000000000000007\",\"events\":2}\n"));
        assert_eq!(take_dumps().len(), 1);
        assert!(take_dumps().is_empty());
        disable();
        assert!(trigger("after_disable", 7).is_none());
    }

    #[test]
    fn ring_is_bounded() {
        enable(2);
        for i in 0..5 {
            record(&ev(i, "e", 1, 10, 0));
        }
        let seqs: Vec<u64> = ring_events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
        disable();
    }
}
