//! Offline shim for `criterion 0.5` — see `compat/README.md`.
//!
//! A real (if minimal) wall-clock micro-benchmark harness behind
//! criterion's builder API: warm-up, fixed sample count within a
//! measurement budget, and median/mean reporting to stdout. No statistical
//! regression analysis, no HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness entry point handed to each `criterion_group!` function.
pub struct Criterion {
    /// `--quick` trims sample counts for smoke runs.
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--quick");
        Criterion { quick }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: if self.quick { 10 } else { 100 },
            warm_up: Duration::from_secs(1),
            measurement: Duration::from_secs(3),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id.to_string(), f);
        group.finish();
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        let mut bencher = Bencher {
            samples: Vec::new(),
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&label);
        self
    }

    pub fn finish(&mut self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, once per sample, `sample_size` times or until the
    /// measurement budget runs out (always at least 3 samples).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warm_until = Instant::now() + self.warm_up;
        while Instant::now() < warm_until {
            black_box(f());
        }
        let budget = Instant::now() + self.measurement;
        self.samples.clear();
        for i in 0..self.sample_size.max(3) {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if i >= 2 && Instant::now() > budget {
                break;
            }
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<50} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{label:<50} median {:>12?}  mean {:>12?}  ({} samples)",
            median,
            mean,
            sorted.len()
        );
    }
}

/// Define a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` from one or more `criterion_group!` functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
