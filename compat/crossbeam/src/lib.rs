//! Offline shim for `crossbeam 0.8` — see `compat/README.md`.
//!
//! Scoped threads have been in `std` since Rust 1.63, so the only piece of
//! crossbeam this workspace's manifests reference is re-exported from the
//! standard library. Parallel fan-out inside the workspace goes through
//! `bate_lp::par`, which builds on these scoped threads.

pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}
