//! Offline shim for `parking_lot 0.12` — see `compat/README.md`.
//!
//! Thin wrappers over `std::sync` with parking_lot's panic-free-looking
//! API (`lock()` returns the guard directly; a poisoned lock panics, which
//! matches parking_lot's behavior of not having poisoning at all for the
//! purposes of this codebase).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}
