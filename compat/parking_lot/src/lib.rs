//! Offline shim for `parking_lot 0.12` — see `compat/README.md`.
//!
//! Thin wrappers over `std::sync` with parking_lot's panic-free-looking
//! API (`lock()` returns the guard directly; a poisoned lock panics, which
//! matches parking_lot's behavior of not having poisoning at all for the
//! purposes of this codebase).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Result of a timed condvar wait, mirroring parking_lot's.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// parking_lot-style condition variable over `std::sync::Condvar`: waits
/// take the guard by `&mut` instead of by value. Implemented by moving
/// the guard out of the slot for the duration of the wait; the closure
/// passed to `with_guard` must not unwind (ours only forwards the
/// poison-recovered guard, which cannot panic).
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

fn with_guard<'a, T: ?Sized>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    unsafe {
        let guard = std::ptr::read(slot);
        std::ptr::write(slot, f(guard));
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        with_guard(guard, |g| {
            self.0.wait(g).unwrap_or_else(|p| p.into_inner())
        });
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        with_guard(guard, |g| {
            let (g, res) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(|p| p.into_inner());
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        self.wait_for(guard, deadline.saturating_duration_since(Instant::now()))
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}
