//! Offline shim for `rand 0.8` — see `compat/README.md`.
//!
//! Implements the subset this workspace uses: `StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over integer and
//! float ranges (half-open and inclusive). The generator is SplitMix64:
//! deterministic, fast, and statistically fine for tests and workload
//! synthesis (it is *not* the real `StdRng`'s ChaCha stream, so absolute
//! sampled values differ from upstream rand — everything in this repo only
//! relies on determinism per seed).

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a 64-bit word source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is used).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64 generator. Passes through a 64-bit state; every output is a
/// strong mix of the counter, so consecutive seeds give uncorrelated
/// streams.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // Pre-mix the seed once so seed 0 does not start at state 0.
        let mut rng = StdRng { state };
        rng.next_u64();
        rng
    }
}

pub mod rngs {
    pub use crate::StdRng;
}

#[inline]
fn unit_f64(word: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a value can be uniformly sampled from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let width = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % width) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let n: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&n));
            let m: u64 = rng.gen_range(5..=5);
            assert_eq!(m, 5);
        }
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "{mean}");
    }
}
