//! Offline shim for `serde_derive` — see `compat/README.md`.
//!
//! The derives in this repository are decorative (nothing serializes
//! through serde — there is no serde_json or bincode in the tree), so the
//! macros expand to nothing. `attributes(serde)` keeps any
//! field/container `#[serde(...)]` attributes accepted.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
