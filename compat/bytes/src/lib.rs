//! Offline shim for `bytes 1` — see `compat/README.md`.
//!
//! `Bytes` is a cursor over an owned byte vector rather than a refcounted
//! slice, and `BytesMut` is a growable buffer. Only the big-endian
//! `Buf`/`BufMut` accessors the wire codec uses are provided.

use std::ops::{Deref, Range};

/// Read-side cursor over immutable bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sub-slice of the *unconsumed* bytes as a fresh cursor.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        Bytes {
            data: self.data[self.pos..][range].to_vec(),
            pos: 0,
        }
    }

    /// Split off and return the first `n` unconsumed bytes.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of range");
        let head = Bytes {
            data: self.data[self.pos..self.pos + n].to_vec(),
            pos: 0,
        };
        self.pos += n;
        head
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        Bytes {
            data: b.data,
            pos: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// Growable write buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Split off and return the first `n` bytes, keeping the rest
    /// (the `bytes 1` frame-assembly idiom).
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.data.len(), "split_to out of range");
        let rest = self.data.split_off(n);
        BytesMut {
            data: std::mem::replace(&mut self.data, rest),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// Read accessors (big-endian), implemented for [`Bytes`].
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, n: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of range");
        self.pos += n;
    }
}

/// Write accessors (big-endian), implemented for [`BytesMut`].
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(u64::MAX - 1);
        buf.put_f64(3.25);
        buf.put_slice(b"xyz");
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), u64::MAX - 1);
        assert_eq!(b.get_f64(), 3.25);
        let tail = b.split_to(3);
        assert_eq!(&*tail, b"xyz");
        assert!(!b.has_remaining());
    }

    #[test]
    fn slice_is_relative_to_cursor() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        b.advance(1);
        let s = b.slice(0..2);
        assert_eq!(&*s, &[2, 3]);
        assert_eq!(b.remaining(), 4);
    }
}
