//! Strategies: deterministic direct value generation (no shrinking).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 stream used by the runner and strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A generator of values of one type.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

// ---- numeric ranges ----------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % width) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % width) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

// ---- tuples ------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

// ---- collections -------------------------------------------------------

/// Element-count specification for [`vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(strategy, len)` — `len` may be a usize, a
/// half-open range, or an inclusive range.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// `prop::sample::select(values)` — uniform choice from a vector.
pub struct Select<T> {
    values: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.values[rng.below(self.values.len())].clone()
    }
}

pub fn select<T: Clone + Debug>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "select over an empty vector");
    Select { values }
}

// ---- any::<T>() --------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub struct Any<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

// ---- string patterns ---------------------------------------------------

/// `&'static str` used as a strategy is interpreted as a character-class
/// pattern of the form `[class]{m,n}` (the only regex shape this
/// repository uses, e.g. `"[A-Za-z0-9]{1,12}"`).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self);
        let n = lo + rng.below(hi - lo + 1);
        (0..n).map(|_| chars[rng.below(chars.len())]).collect()
    }
}

fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let inner_end = pattern
        .find(']')
        .unwrap_or_else(|| panic!("unsupported string pattern {pattern:?} (want [class]{{m,n}})"));
    assert!(
        pattern.starts_with('['),
        "unsupported string pattern {pattern:?} (want [class]{{m,n}})"
    );
    let class: Vec<char> = pattern[1..inner_end].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i] as u32, class[i + 2] as u32);
            assert!(a <= b, "descending char range in {pattern:?}");
            for c in a..=b {
                chars.push(char::from_u32(c).unwrap());
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    assert!(!chars.is_empty(), "empty char class in {pattern:?}");

    let rest = &pattern[inner_end + 1..];
    if rest.is_empty() {
        return (chars, 1, 1);
    }
    let body = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition in {pattern:?}"));
    let (lo, hi) = match body.split_once(',') {
        Some((l, h)) => (l.trim().parse().unwrap(), h.trim().parse().unwrap()),
        None => {
            let n = body.trim().parse().unwrap();
            (n, n)
        }
    };
    assert!(lo <= hi, "descending repetition in {pattern:?}");
    (chars, lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_pattern_generates_in_class() {
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let s = "[A-Za-z0-9]{1,12}".generate(&mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));
        }
    }

    #[test]
    fn vec_respects_size() {
        let mut rng = TestRng::new(9);
        for _ in 0..50 {
            let v = vec(0u32..10, 2..5).generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
        }
        assert_eq!(vec(0u32..10, 7).generate(&mut rng).len(), 7);
    }

    #[test]
    fn flat_map_threads_rng() {
        let strat = (1usize..4).prop_flat_map(|n| vec(0.0f64..1.0, n));
        let mut rng = TestRng::new(11);
        for _ in 0..20 {
            let v = strat.generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
        }
    }
}
