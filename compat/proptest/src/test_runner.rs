//! Case runner: deterministic seeds, reject handling, no shrinking.

use crate::strategy::{Strategy, TestRng};

/// Runner configuration (only the case count is configurable).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure — aborts the whole test with a report.
    Fail(String),
    /// `prop_assume!` discard — the case is re-drawn.
    Reject,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Execute `cases` generated inputs against `test`. Rejected cases are
/// re-drawn (bounded); a failing case panics with the counterexample.
pub fn run<S, F>(name: &str, config: ProptestConfig, strategy: &S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> TestCaseResult,
{
    let base_seed = fnv1a(name);
    let max_attempts = (config.cases as u64).saturating_mul(64).max(1024);
    let mut passed = 0u32;
    let mut attempts = 0u64;
    while passed < config.cases {
        if attempts >= max_attempts {
            panic!(
                "proptest '{name}': too many rejected cases \
                 ({passed}/{} passed after {attempts} attempts)",
                config.cases
            );
        }
        let mut rng = TestRng::new(base_seed.wrapping_add(attempts.wrapping_mul(0x9E37_79B9)));
        attempts += 1;
        let value = strategy.generate(&mut rng);
        let repr = format!("{value:?}");
        match test(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{name}' failed at case {passed} (attempt {attempts}):\n\
                     {msg}\ninput: {repr}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_cases() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        run("t", ProptestConfig::with_cases(10), &(0u32..5), |_| {
            counter.set(counter.get() + 1);
            Ok(())
        });
        count += counter.get();
        assert_eq!(count, 10);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failure_panics_with_message() {
        run("t", ProptestConfig::with_cases(4), &(0u32..5), |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn rejects_are_redrawn() {
        let seen = std::cell::Cell::new(0u32);
        run("t", ProptestConfig::with_cases(8), &(0u32..10), |v| {
            if v < 5 {
                return Err(TestCaseError::Reject);
            }
            seen.set(seen.get() + 1);
            Ok(())
        });
        assert_eq!(seen.get(), 8);
    }
}
