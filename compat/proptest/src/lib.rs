//! Offline shim for `proptest 1` — see `compat/README.md`.
//!
//! Direct-generation property testing: strategies produce values straight
//! from a deterministic RNG (SplitMix64 keyed by test name and case
//! index), the runner executes the requested number of cases, and a
//! failing case panics with the generated input's `Debug` output. There is
//! **no shrinking** — failures report the raw counterexample.

pub mod strategy;
pub mod test_runner;

/// `prop::collection` / `prop::sample` namespace, mirroring upstream.
pub mod prop {
    pub mod collection {
        pub use crate::strategy::vec;
    }
    pub mod sample {
        pub use crate::strategy::select;
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Entry point: a block of property-test functions with `arg in strategy`
/// parameter lists, optionally preceded by
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let strategy = ( $( $strat, )+ );
                $crate::test_runner::run(
                    stringify!($name),
                    config,
                    &strategy,
                    |( $($arg,)+ )| { $body Ok(()) },
                );
            }
        )*
    };
}

/// Fail the current case (returns `Err` from the case closure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Discard the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
