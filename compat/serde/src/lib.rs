//! Offline shim for `serde 1` — see `compat/README.md`.
//!
//! Marker traits plus no-op derive macros. Nothing in this repository
//! serializes through serde (no serde_json/bincode in the tree), so the
//! traits carry no methods; the derives only need to exist so
//! `#[derive(Serialize, Deserialize)]` compiles.

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
